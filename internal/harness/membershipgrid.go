package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"text/tabwriter"

	"graphword2vec/internal/checkpoint"
	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
)

// The membership grid is the elastic-membership experiment (PROTOCOL.md
// §10, DESIGN.md §11): a priority-graded case matrix over the three
// cluster-shape changes — a permanent death after which the survivors
// continue as N−1, a wiped replacement rejoining at N, and a paused
// N−1 cluster absorbing a fresh rank back to N — across all three
// communication schemes, both transports, and both workloads. Every
// cell must converge, and the post-change continuation must be
// byte-identical to a reference cluster launched directly from the
// re-sharded checkpoint the membership change wrote (for cells whose
// negotiation degrades to round 0, to an uninterrupted fresh run at
// the new shape).

// MembershipScenario is the shape change a cell exercises.
type MembershipScenario int

const (
	// ScenarioDepart: rank 1 of a 3-host cluster dies for good; the two
	// survivors relaunch as a 2-host cluster, re-shard the dead rank's
	// master range from the newest common checkpoint, and finish.
	ScenarioDepart MembershipScenario = iota
	// ScenarioReplace: rank 1 dies and is replaced by a fresh host with
	// a wiped disk; the cluster relaunches at 3 hosts, the replacement
	// joining with no identity. Under the RepModel schemes the
	// survivors' replicas cover every range; under PullModel the dead
	// rank's range is unrecoverable and the negotiation degrades to a
	// deterministic fresh start — both verdicts are asserted.
	ScenarioReplace
	// ScenarioGrow: a 2-host cluster pauses at a round boundary
	// (StopAfterRound — the scale-up cut) and relaunches as 3 hosts,
	// the newcomer joining fresh; the model re-shards onto the wider
	// map and training continues.
	ScenarioGrow
)

// String names the scenario.
func (s MembershipScenario) String() string {
	switch s {
	case ScenarioDepart:
		return "depart"
	case ScenarioReplace:
		return "replace"
	case ScenarioGrow:
		return "grow"
	default:
		return fmt.Sprintf("MembershipScenario(%d)", int(s))
	}
}

// MembershipCase is one cell of the grid.
type MembershipCase struct {
	// Priority grades the cell: 1 cells form the CI smoke lane
	// (membership-smoke), 2 the full grid.
	Priority int
	// Workload is "text" or "graph".
	Workload string
	// Mode is the communication scheme under test.
	Mode gluon.Mode
	// Transport is "sim" or "tcp" (tight failure-detection deadlines).
	Transport string
	// Scenario is the shape change.
	Scenario MembershipScenario
}

// ID renders the cell's stable identifier.
func (c MembershipCase) ID() string {
	return fmt.Sprintf("%s/%v/%s/%s", c.Workload, c.Mode, c.Transport, c.Scenario)
}

// MembershipGridCases enumerates the full matrix: scenarios × modes ×
// transports × workloads. Priority 1 marks a striding diagonal that
// still touches every axis value — the membership-smoke CI lane.
func MembershipGridCases() []MembershipCase {
	scenarios := []MembershipScenario{ScenarioDepart, ScenarioReplace, ScenarioGrow}
	modes := []gluon.Mode{gluon.RepModelNaive, gluon.RepModelOpt, gluon.PullModel}
	transports := []string{"sim", "tcp"}
	workloads := []string{"text", "graph"}
	var cases []MembershipCase
	i := 0
	for _, wl := range workloads {
		for _, mode := range modes {
			for _, tr := range transports {
				for _, s := range scenarios {
					prio := 2
					if int(s) == i%len(scenarios) {
						prio = 1
					}
					cases = append(cases, MembershipCase{Priority: prio, Workload: wl, Mode: mode, Transport: tr, Scenario: s})
				}
				i++
			}
		}
	}
	return cases
}

// MembershipGridRow is one executed cell's outcome.
type MembershipGridRow struct {
	ID        string `json:"id"`
	Priority  int    `json:"priority"`
	Workload  string `json:"workload"`
	Mode      string `json:"mode"`
	Transport string `json:"transport"`
	Scenario  string `json:"scenario"`
	OldHosts  int    `json:"old_hosts"`
	NewHosts  int    `json:"new_hosts"`
	// CutRound is the round boundary the membership change restarted
	// from (0 = the negotiation degraded to a fresh start — expected
	// for replace under PullModel, where the dead rank's master range
	// has no surviving source).
	CutRound uint32 `json:"cut_round"`
	// Recovered is true when the shape change completed training.
	Recovered bool `json:"recovered"`
	// Identical is true when the continuation's final model hashes
	// equal to the reference run's (launched from the re-sharded
	// checkpoint, or fresh for CutRound 0).
	Identical bool   `json:"identical"`
	Hash      string `json:"hash"`
}

// membershipGrowCut: the grow scenario pauses its 2-host cluster at
// this round boundary (and checkpoints exactly there, Every=cut).
const membershipGrowCut = faultGridSyncRounds

// captureSink checkpoints to the live store and mirrors the cut-round
// generation — the re-sharded snapshot the membership change writes —
// into a reference directory, so a verification cluster can later be
// launched directly from the membership change's own output.
type captureSink struct {
	store *checkpoint.Store
	ref   *checkpoint.Store
	round uint32
}

func (s *captureSink) Save(snap *checkpoint.Snapshot) error {
	if err := s.store.Save(snap); err != nil {
		return err
	}
	if snap.NextRound == s.round {
		return s.ref.Save(snap)
	}
	return nil
}

// runKillSetup runs the 3-host faulted generation a depart/replace cell
// starts from: rank 1 dies at the kill round, every rank errors, and
// the shared dir is left holding the round-2 checkpoint generation.
func runKillSetup(w *faultWorkload, cfg core.Config, transport, dir string) error {
	trs, closeAll, err := faultGridTransports(transport, cfg.Hosts)
	if err != nil {
		return err
	}
	const victim = 1
	trig := &faultTrigger{point: FaultAtCompute, round: faultGridKillRound}
	trs[victim] = &faultTransport{Transport: trs[victim], trig: trig}
	_, errs := clusterRun(w, cfg, trs, func(int) core.RunOptions {
		return core.RunOptions{Checkpoint: &core.CheckpointPolicy{Dir: dir, Every: faultGridCkptEvery}}
	})
	closeAll()
	for _, err := range errs {
		if err == nil {
			return fmt.Errorf("harness: a rank survived the injected fault")
		}
	}
	if !errors.Is(errs[victim], errInjectedKill) {
		return fmt.Errorf("harness: victim died of %v, not the injected fault", errs[victim])
	}
	return nil
}

// elasticRun drives one elastic relaunch at the new shape: every rank
// resumes with the membership negotiation enabled, oldRank mapping new
// ranks to their old identities (core.FreshRank for joiners), and the
// cut-round checkpoint generation mirrored into refDir.
func elasticRun(w *faultWorkload, cfg core.Config, transport, dir, refDir string, cut uint32, oldRank func(rank int) int) ([]*core.DistributedResult, error) {
	trs, closeAll, err := faultGridTransports(transport, cfg.Hosts)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	results, errs := clusterRun(w, cfg, trs, func(rank int) core.RunOptions {
		return core.RunOptions{
			Checkpoint: &core.CheckpointPolicy{
				Dir: dir, Every: faultGridCkptEvery, Resume: true, Elastic: true, OldRank: oldRank(rank),
			},
			Sink: &captureSink{
				store: checkpoint.NewStore(dir, rank),
				ref:   checkpoint.NewStore(refDir, rank),
				round: cut,
			},
		}
	})
	for h, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("elastic rank %d: %w", h, err)
		}
	}
	return results, nil
}

// referenceFromDir runs a plain-resume cluster straight from the
// captured re-sharded checkpoints and returns its final hash — the
// byte-identity oracle: a membership change is correct exactly when
// continuing through it equals launching a brand-new cluster of the
// new shape from the checkpoint it wrote.
func referenceFromDir(w *faultWorkload, cfg core.Config, transport, refDir string, cut uint32) (string, error) {
	trs, closeAll, err := faultGridTransports(transport, cfg.Hosts)
	if err != nil {
		return "", err
	}
	defer closeAll()
	results, errs := clusterRun(w, cfg, trs, func(int) core.RunOptions {
		return core.RunOptions{Checkpoint: &core.CheckpointPolicy{Dir: refDir, Every: faultGridCkptEvery, Resume: true}}
	})
	for h, err := range errs {
		if err != nil {
			return "", fmt.Errorf("reference rank %d: %w", h, err)
		}
	}
	for h, r := range results {
		if r.ResumedFrom != cut {
			return "", fmt.Errorf("reference rank %d resumed from %d, want the cut round %d", h, r.ResumedFrom, cut)
		}
	}
	return hashCanonical(results[0].Canonical), nil
}

// runMembershipCell executes one cell. freshRef lazily computes the
// uninterrupted 3-host reference hash — needed only by cells whose
// negotiation legitimately degrades to round 0.
func runMembershipCell(w *faultWorkload, c MembershipCase, freshRef func() (string, error), dir, refDir string) (MembershipGridRow, error) {
	cfg3 := w.cfg(c.Mode)
	cfg2 := cfg3
	cfg2.Hosts = 2
	row := MembershipGridRow{
		ID: c.ID(), Priority: c.Priority, Workload: c.Workload,
		Mode: c.Mode.String(), Transport: c.Transport, Scenario: c.Scenario.String(),
	}

	var (
		contCfg core.Config
		cut     uint32
		oldRank func(rank int) int
	)
	switch c.Scenario {
	case ScenarioDepart:
		row.OldHosts, row.NewHosts = 3, 2
		if err := runKillSetup(w, cfg3, c.Transport, dir); err != nil {
			return row, fmt.Errorf("harness: %s: %w", c.ID(), err)
		}
		// Survivors are old ranks 0 and 2; the newest checkpoint every
		// range is sourceable at is the round-2 generation.
		contCfg, cut = cfg2, faultGridCkptEvery
		oldRank = func(rank int) int { return []int{0, 2}[rank] }
	case ScenarioReplace:
		row.OldHosts, row.NewHosts = 3, 3
		if err := runKillSetup(w, cfg3, c.Transport, dir); err != nil {
			return row, fmt.Errorf("harness: %s: %w", c.ID(), err)
		}
		// The replacement host's disk is wiped: the dead rank's files
		// are gone, and the new rank 1 joins with no identity.
		for _, p := range []string{"rank0001.ckpt", "rank0001.ckpt.prev"} {
			if err := os.Remove(filepath.Join(dir, p)); err != nil && !os.IsNotExist(err) {
				return row, err
			}
		}
		contCfg, cut = cfg3, faultGridCkptEvery
		if c.Mode == gluon.PullModel {
			// Only the owner's master range is canonical in a PullModel
			// snapshot, so old rank 1's range has no surviving source.
			cut = 0
		}
		oldRank = func(rank int) int {
			if rank == 1 {
				return core.FreshRank
			}
			return rank
		}
	case ScenarioGrow:
		row.OldHosts, row.NewHosts = 2, 3
		// The 2-host generation: train to the pause boundary and
		// checkpoint exactly there.
		trs, closeAll, err := faultGridTransports(c.Transport, 2)
		if err != nil {
			return row, err
		}
		results, errs := clusterRun(w, cfg2, trs, func(int) core.RunOptions {
			return core.RunOptions{
				Checkpoint:     &core.CheckpointPolicy{Dir: dir, Every: membershipGrowCut},
				StopAfterRound: membershipGrowCut,
			}
		})
		closeAll()
		for h, err := range errs {
			if err != nil {
				return row, fmt.Errorf("harness: %s: paused run rank %d: %w", c.ID(), h, err)
			}
		}
		for h, r := range results {
			if !r.Engine.Paused {
				return row, fmt.Errorf("harness: %s: rank %d did not pause at round %d", c.ID(), h, membershipGrowCut)
			}
		}
		contCfg, cut = cfg3, membershipGrowCut
		oldRank = func(rank int) int {
			if rank == 2 {
				return core.FreshRank
			}
			return rank
		}
	default:
		return row, fmt.Errorf("harness: unknown membership scenario %v", c.Scenario)
	}
	row.CutRound = cut

	// The continuation: relaunch at the new shape, negotiate the
	// membership change, re-shard, and train to completion.
	results, err := elasticRun(w, contCfg, c.Transport, dir, refDir, cut, oldRank)
	if err != nil {
		return row, fmt.Errorf("harness: %s: %w", c.ID(), err)
	}
	for h, r := range results {
		if r.ResumedFrom != cut {
			return row, fmt.Errorf("harness: %s: rank %d resumed from %d, want the cut round %d", c.ID(), h, r.ResumedFrom, cut)
		}
	}
	row.Recovered = true
	row.Hash = hashCanonical(results[0].Canonical)

	// The byte-identity verdict.
	var refHash string
	if cut == 0 {
		refHash, err = freshRef()
	} else {
		refHash, err = referenceFromDir(w, contCfg, c.Transport, refDir, cut)
	}
	if err != nil {
		return row, fmt.Errorf("harness: %s: %w", c.ID(), err)
	}
	row.Identical = row.Hash == refHash
	return row, nil
}

// MembershipGrid executes the given cells (use MembershipGridCases for
// the full matrix), renders a case table to opts.Out, and returns the
// rows. A cell that fails to converge, lands on the wrong cut, or
// diverges from its reference makes the grid return an error alongside
// the rows collected so far.
func MembershipGrid(opts Options, cases []MembershipCase) ([]MembershipGridRow, error) {
	opts = opts.WithDefaults()
	workloads, err := faultWorkloads(opts)
	if err != nil {
		return nil, err
	}
	byName := map[string]*faultWorkload{}
	for _, w := range workloads {
		byName[w.name] = w
	}

	// Uninterrupted 3-host references, keyed (workload, mode), computed
	// on demand for the cells that degrade to round 0.
	refs := map[string]string{}
	reference := func(w *faultWorkload, mode gluon.Mode) (string, error) {
		key := w.name + "/" + mode.String()
		if h, ok := refs[key]; ok {
			return h, nil
		}
		trs, closeAll, err := faultGridTransports("sim", faultGridHosts)
		if err != nil {
			return "", err
		}
		defer closeAll()
		results, errs := clusterRun(w, w.cfg(mode), trs, func(int) core.RunOptions { return core.RunOptions{} })
		for h, err := range errs {
			if err != nil {
				return "", fmt.Errorf("harness: membership-grid reference %s rank %d: %w", key, h, err)
			}
		}
		h := hashCanonical(results[0].Canonical)
		refs[key] = h
		return h, nil
	}

	var rows []MembershipGridRow
	var failed []string
	for _, c := range cases {
		w, ok := byName[c.Workload]
		if !ok {
			return rows, fmt.Errorf("harness: unknown membership-grid workload %q", c.Workload)
		}
		dir, err := os.MkdirTemp("", "gw2v-membership-*")
		if err != nil {
			return rows, err
		}
		refDir, err := os.MkdirTemp("", "gw2v-membership-ref-*")
		if err != nil {
			os.RemoveAll(dir)
			return rows, err
		}
		row, err := runMembershipCell(w, c, func() (string, error) { return reference(w, c.Mode) }, dir, refDir)
		os.RemoveAll(dir)
		os.RemoveAll(refDir)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		if !row.Recovered || !row.Identical {
			failed = append(failed, row.ID)
		}
	}

	tw := tabwriter.NewWriter(opts.out(), 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Membership grid (scale=%s, ckpt every %d rounds)\n", opts.Scale, faultGridCkptEvery)
	fmt.Fprintln(tw, "P\tWorkload\tMode\tTransport\tScenario\tHosts\tCut@\tConverged\tByte-identical")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d→%d\t%d\t%v\t%v\n",
			r.Priority, r.Workload, r.Mode, r.Transport, r.Scenario,
			r.OldHosts, r.NewHosts, r.CutRound, r.Recovered, r.Identical)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	if len(failed) > 0 {
		return rows, fmt.Errorf("harness: %d membership-grid cells did not continue byte-identically: %v", len(failed), failed)
	}
	return rows, nil
}

// SecondFaultPoint is where a SECOND rank dies while the cluster is
// already recovering from a first failure.
type SecondFaultPoint int

const (
	// SecondFaultResumeOffer kills a survivor as it sends its resume
	// offer — mid plain-resume negotiation.
	SecondFaultResumeOffer SecondFaultPoint = iota
	// SecondFaultMembershipOffer kills a survivor as it sends its
	// membership offer — mid elastic negotiation.
	SecondFaultMembershipOffer
	// SecondFaultTransfer kills a survivor as the first migrated range
	// arrives — mid range transfer.
	SecondFaultTransfer
)

// String names the second kill point.
func (p SecondFaultPoint) String() string {
	switch p {
	case SecondFaultResumeOffer:
		return "resume-offer"
	case SecondFaultMembershipOffer:
		return "membership-offer"
	case SecondFaultTransfer:
		return "range-transfer"
	default:
		return fmt.Sprintf("SecondFaultPoint(%d)", int(p))
	}
}

// killOnFrame kills on the first observed frame of a kind: before the
// send, or instead of delivering the receive.
type killOnFrame struct {
	sendKind byte
	recvKind byte

	mu    sync.Mutex
	fired bool
}

func (g *killOnFrame) match(payload []byte, want byte) bool {
	if want == 0 {
		return false
	}
	kind, _ := gluon.InspectFrame(payload)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fired || kind != want {
		return false
	}
	g.fired = true
	return true
}

// killTransport is faultTransport's sibling for second-failure cells.
type killTransport struct {
	gluon.Transport
	trig *killOnFrame
}

func (f *killTransport) kill() error {
	f.Transport.Close()
	return fmt.Errorf("%w on frame", errInjectedKill)
}

func (f *killTransport) Send(from, to int, payload []byte) error {
	if f.trig.match(payload, f.trig.sendKind) {
		return f.kill()
	}
	return f.Transport.Send(from, to, payload)
}

func (f *killTransport) Recv(host int) (int, []byte, error) {
	from, payload, err := f.Transport.Recv(host)
	if err != nil {
		return from, payload, err
	}
	if f.trig.match(payload, f.trig.recvKind) {
		return 0, nil, f.kill()
	}
	return from, payload, nil
}

// SecondFailure exercises a second rank dying while the cluster is
// already recovering from a first kill: during the plain resume
// negotiation, during the elastic membership negotiation, or in the
// middle of a range transfer. The recovery attempt must not hang —
// every survivor must surface gluon.ErrPeerLost — and the new victim
// must die of the injected kill. TCP only: the assertion is about the
// failure detector, which the in-process transport does not model.
func SecondFailure(opts Options, point SecondFaultPoint) error {
	opts = opts.WithDefaults()
	workloads, err := faultWorkloads(opts)
	if err != nil {
		return err
	}
	w := workloads[0] // text; the kill points are workload-agnostic
	cfg3 := w.cfg(gluon.RepModelOpt)
	dir, err := os.MkdirTemp("", "gw2v-secondfail-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// First failure: rank 1 of the 3-host cluster dies for good.
	if err := runKillSetup(w, cfg3, "tcp", dir); err != nil {
		return err
	}

	// Recovery attempt with a second kill armed. The resume-offer point
	// retries at the full shape (a plain restart, as if rank 1 came
	// straight back); the elastic points continue as the 2 survivors.
	trig := &killOnFrame{}
	cfg := cfg3
	pol := func(rank int) *core.CheckpointPolicy {
		return &core.CheckpointPolicy{Dir: dir, Every: faultGridCkptEvery, Resume: true}
	}
	victim := 2
	switch point {
	case SecondFaultResumeOffer:
		trig.sendKind = gluon.FrameResume
	case SecondFaultMembershipOffer, SecondFaultTransfer:
		if point == SecondFaultMembershipOffer {
			trig.sendKind = gluon.FrameMembership
		} else {
			trig.recvKind = gluon.FrameTransfer
		}
		cfg = cfg3
		cfg.Hosts = 2
		victim = 1 // old rank 2, the non-root survivor
		base := pol
		pol = func(rank int) *core.CheckpointPolicy {
			p := base(rank)
			p.Elastic = true
			p.OldRank = []int{0, 2}[rank]
			return p
		}
	default:
		return fmt.Errorf("harness: unknown second-fault point %v", point)
	}
	trs, closeAll, err := faultGridTransports("tcp", cfg.Hosts)
	if err != nil {
		return err
	}
	defer closeAll()
	trs[victim] = &killTransport{Transport: trs[victim], trig: trig}
	_, errs := clusterRun(w, cfg, trs, func(rank int) core.RunOptions {
		return core.RunOptions{Checkpoint: pol(rank)}
	})
	for h, err := range errs {
		switch {
		case h == victim:
			if !errors.Is(err, errInjectedKill) {
				return fmt.Errorf("harness: %v: victim rank %d died of %v, want the injected kill", point, h, err)
			}
		case err == nil:
			return fmt.Errorf("harness: %v: rank %d completed despite the second failure", point, h)
		case !errors.Is(err, gluon.ErrPeerLost):
			return fmt.Errorf("harness: %v: rank %d failed with %v, want gluon.ErrPeerLost", point, h, err)
		}
	}
	return nil
}
