package harness

import (
	"fmt"
	"text/tabwriter"

	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
)

// Table23Row holds one dataset's results for Tables 2 and 3: training
// times of the two shared-memory baselines (1 host) and GraphWord2Vec
// (opts.Hosts hosts), the speedup, and the three systems' accuracies.
type Table23Row struct {
	Dataset string
	// Simulated training times in seconds.
	W2VSeconds, GEMSeconds, GW2VSeconds float64
	// GEMOOM marks the Gensim out-of-memory cell (paper: wiki).
	GEMOOM bool
	// Speedup is W2VSeconds / GW2VSeconds (paper reports ~14×).
	Speedup float64
	// Accuracies for Table 3.
	W2VAcc, GEMAcc, GW2VAcc Accuracies
}

// Table23 regenerates Table 2 (execution time and speedup) and Table 3
// (semantic/syntactic/total accuracy) in one pass, since they share the
// same training runs.
func Table23(opts Options) ([]Table23Row, error) {
	opts = opts.WithDefaults()
	datasets, err := LoadAll(opts)
	if err != nil {
		return nil, err
	}
	budget := gemMemoryBudgetBytes(int64(datasets[len(datasets)-1].Corp.Len()))

	var rows []Table23Row
	for _, d := range datasets {
		row := Table23Row{Dataset: d.Name}

		w2v, err := runW2V(d, opts, opts.BaseAlpha, false)
		if err != nil {
			return nil, fmt.Errorf("harness: W2V on %s: %w", d.Name, err)
		}
		row.W2VSeconds = w2v.SimSeconds
		row.W2VAcc = w2v.Acc

		if gemPeakBytes(d, opts.Dim) > budget {
			row.GEMOOM = true
		} else {
			gem, err := runGEM(d, opts, opts.BaseAlpha)
			if err != nil {
				return nil, fmt.Errorf("harness: GEM on %s: %w", d.Name, err)
			}
			row.GEMSeconds = gem.SimSeconds
			row.GEMAcc = gem.Acc
		}

		cfg := distConfig(opts, opts.Hosts, syncRoundsFor(opts), "MC", gluon.RepModelOpt, opts.BaseAlpha)
		res, acc, err := runDistributed(d, opts, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("harness: GW2V on %s: %w", d.Name, err)
		}
		row.GW2VSeconds = res.SimulatedSeconds(opts.Cost, opts.ModeledThreads, opts.ThreadEff)
		row.GW2VAcc = acc
		if row.GW2VSeconds > 0 {
			row.Speedup = row.W2VSeconds / row.GW2VSeconds
		}
		rows = append(rows, row)
	}

	out := opts.out()
	w := tabwriter.NewWriter(out, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Table 2: Execution time (simulated sec) of Word2Vec and Gensim on 1 host\n")
	fmt.Fprintf(w, "and GraphWord2Vec on %d hosts, and speedup of GW2V over W2V (scale=%s)\n", opts.Hosts, opts.Scale)
	fmt.Fprintln(w, "Dataset\tW2V\tGEM\tGW2V\tSpeedup")
	for _, r := range rows {
		gem := fmtDuration(r.GEMSeconds)
		if r.GEMOOM {
			gem = "OOM"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1fx\n", r.Dataset, fmtDuration(r.W2VSeconds), gem, fmtDuration(r.GW2VSeconds), r.Speedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table 3: Accuracy (semantic, syntactic, total) in percent")
	fmt.Fprintln(w, "Dataset\tW2V sem\tGEM sem\tGW2V sem\tW2V syn\tGEM syn\tGW2V syn\tW2V tot\tGEM tot\tGW2V tot")
	for _, r := range rows {
		gemS, gemY, gemT := fmt.Sprintf("%.1f", r.GEMAcc.Semantic), fmt.Sprintf("%.1f", r.GEMAcc.Syntactic), fmt.Sprintf("%.1f", r.GEMAcc.Total)
		if r.GEMOOM {
			gemS, gemY, gemT = "-", "-", "-"
		}
		fmt.Fprintf(w, "%s\t%.1f\t%s\t%.1f\t%.1f\t%s\t%.1f\t%.1f\t%s\t%.1f\n",
			r.Dataset,
			r.W2VAcc.Semantic, gemS, r.GW2VAcc.Semantic,
			r.W2VAcc.Syntactic, gemY, r.GW2VAcc.Syntactic,
			r.W2VAcc.Total, gemT, r.GW2VAcc.Total)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return rows, nil
}

// syncRoundsFor applies the paper's rule of thumb to the configured
// host count.
func syncRoundsFor(opts Options) int {
	return core.SyncFrequencyRule(opts.Hosts)
}
