//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in.
// Race-instrumented SGNS training is ~20× slower, so the distributed
// byte-identity tests shrink their coverage (one sync mode instead of
// three) under -race; the full matrix runs in the plain lane.
const raceEnabled = true
