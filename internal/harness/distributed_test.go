package harness

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/model"
)

// TestMain lets the test binary re-exec itself as a distributed worker:
// TestMultiProcessMatchesSimulation spawns copies of this binary with
// GW2V_WORKER_RANK set, giving a true multi-OS-process cluster without
// needing the go toolchain at test time.
func TestMain(m *testing.M) {
	if os.Getenv("GW2V_WORKER_RANK") != "" {
		if err := runWorkerProcess(); err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distTestOpts are the dataset options shared by the parent test and
// the re-exec'd worker processes; both must derive the identical
// dataset, so keep this deterministic and in one place.
func distTestOpts() Options {
	o := tinyOpts()
	o.Epochs = 2
	return o
}

// distTestConfig is the training configuration for the byte-identity
// tests: 4 hosts, deterministic, paper-default combiner.
func distTestConfig(opts Options, mode gluon.Mode) core.Config {
	cfg := distConfig(opts, 4, core.SyncFrequencyRule(4), "MC", mode, opts.BaseAlpha)
	cfg.Epochs = opts.Epochs
	return cfg
}

// simulatedCanonical trains the in-process simulated cluster and
// returns the canonical model.
func simulatedCanonical(t *testing.T, d *Dataset, opts Options, cfg core.Config) *model.Model {
	t.Helper()
	tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Corp, opts.Dim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Canonical
}

// assertModelsIdentical compares every float bit-for-bit.
func assertModelsIdentical(t *testing.T, label string, want, got *model.Model) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil model", label)
	}
	if want.VocabSize() != got.VocabSize() || want.Dim != got.Dim {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, want.VocabSize(), want.Dim, got.VocabSize(), got.Dim)
	}
	for i := range want.Emb.Data {
		if want.Emb.Data[i] != got.Emb.Data[i] {
			t.Fatalf("%s: embedding layer diverges at %d: %v vs %v", label, i, want.Emb.Data[i], got.Emb.Data[i])
		}
	}
	for i := range want.Ctx.Data {
		if want.Ctx.Data[i] != got.Ctx.Data[i] {
			t.Fatalf("%s: training layer diverges at %d: %v vs %v", label, i, want.Ctx.Data[i], got.Ctx.Data[i])
		}
	}
}

// TestEnginesOverTCPMatchSimulation is the tentpole's keystone: four
// free-running single-host engines over localhost TCP sockets must
// produce an embedding byte-identical to the lockstep in-process
// simulation at the same seeds, in every synchronisation mode.
func TestEnginesOverTCPMatchSimulation(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	modes := []gluon.Mode{gluon.RepModelOpt, gluon.PullModel, gluon.RepModelNaive}
	if raceEnabled {
		// The engine/transport concurrency under test is identical in
		// every mode; one suffices for the (much slower) race lane.
		modes = modes[:1]
	}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := distTestConfig(opts, mode)
			want := simulatedCanonical(t, d, opts, cfg)

			trs, err := gluon.NewTCPCluster(cfg.Hosts)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*core.DistributedResult, cfg.Hosts)
			errs := make([]error, cfg.Hosts)
			var wg sync.WaitGroup
			for h := 0; h < cfg.Hosts; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					// Closing on exit lets an errored host's peers fail
					// via connection loss instead of blocking forever.
					defer trs[h].Close()
					results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
				}(h)
			}
			wg.Wait()
			for h, err := range errs {
				if err != nil {
					t.Fatalf("host %d: %v", h, err)
				}
			}
			for h := 1; h < cfg.Hosts; h++ {
				if results[h].Canonical != nil {
					t.Errorf("host %d returned a canonical model; only rank 0 gathers", h)
				}
			}
			assertModelsIdentical(t, mode.String(), want, results[0].Canonical)
			if results[0].Engine.Train.Pairs == 0 {
				t.Error("rank 0 trained no pairs")
			}
		})
	}
}

// TestEnginesOverTCPMatchSimulationFP16: the lossy fp16 codec is
// excluded from bit-identity against lossless runs, but it must still
// be deterministic — the simulated cluster and a real TCP mesh quantize
// identically, so their models stay byte-identical to each other.
func TestEnginesOverTCPMatchSimulationFP16(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := distTestConfig(opts, gluon.RepModelOpt)
	cfg.Wire = gluon.CodecFP16
	want := simulatedCanonical(t, d, opts, cfg)

	// And it must actually be lossy-different from the packed run: if it
	// matched bit-for-bit the quantizer would not be engaged at all.
	lossless := distTestConfig(opts, gluon.RepModelOpt)
	wantLossless := simulatedCanonical(t, d, opts, lossless)
	same := true
	for i := range want.Emb.Data {
		if want.Emb.Data[i] != wantLossless.Emb.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("fp16 model is bit-identical to the lossless run; quantizer not engaged")
	}

	trs, err := gluon.NewTCPCluster(cfg.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*core.DistributedResult, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	var wg sync.WaitGroup
	for h := 0; h < cfg.Hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			defer trs[h].Close()
			results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
	assertModelsIdentical(t, "fp16", want, results[0].Canonical)
}

// workerEnv are the variables the re-exec'd worker reads.
const (
	envWorkerRank  = "GW2V_WORKER_RANK"
	envWorkerPeers = "GW2V_WORKER_PEERS"
	envWorkerOut   = "GW2V_WORKER_OUT"
	envWorkerMode  = "GW2V_WORKER_MODE"
)

// runWorkerProcess is the body of one re-exec'd worker: regenerate the
// deterministic dataset, join the TCP mesh, train, and (on rank 0)
// write the gathered canonical model.
func runWorkerProcess() error {
	rank, err := strconv.Atoi(os.Getenv(envWorkerRank))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envWorkerRank, err)
	}
	peers := strings.Split(os.Getenv(envWorkerPeers), ",")
	mode, err := gluon.ParseMode(os.Getenv(envWorkerMode))
	if err != nil {
		return err
	}
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		return err
	}
	cfg := distTestConfig(opts, mode)
	tr, err := gluon.DialMesh(gluon.MeshConfig{
		Rank:     rank,
		Peers:    peers,
		Checksum: cfg.Checksum(d.Vocab.Size(), d.Corp.Len(), opts.Dim),
		Timeout:  20 * time.Second,
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	res, err := core.RunDistributed(cfg, rank, tr, d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
	if err != nil {
		return err
	}
	if res.Canonical != nil {
		return res.Canonical.SaveFile(os.Getenv(envWorkerOut))
	}
	return nil
}

// TestMultiProcessMatchesSimulation launches four real OS processes
// (re-execs of this test binary) that bootstrap a TCP mesh over
// loopback, train, and gather onto rank 0 — whose written model must be
// byte-identical to the in-process simulation.
func TestMultiProcessMatchesSimulation(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	mode := gluon.RepModelOpt
	cfg := distTestConfig(opts, mode)
	want := simulatedCanonical(t, d, opts, cfg)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, cfg.Hosts)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	outPath := filepath.Join(t.TempDir(), "canonical.bin")

	cmds := make([]*exec.Cmd, cfg.Hosts)
	outputs := make([]strings.Builder, cfg.Hosts)
	for r := 0; r < cfg.Hosts; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorkerRank+"="+strconv.Itoa(r),
			envWorkerPeers+"="+strings.Join(addrs, ","),
			envWorkerOut+"="+outPath,
			envWorkerMode+"="+mode.String(),
		)
		cmd.Stdout = &outputs[r]
		cmd.Stderr = &outputs[r]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	deadline := time.After(90 * time.Second)
	waitErrs := make(chan error, cfg.Hosts)
	for _, cmd := range cmds {
		go func(cmd *exec.Cmd) { waitErrs <- cmd.Wait() }(cmd)
	}
	for i := 0; i < cfg.Hosts; i++ {
		select {
		case err := <-waitErrs:
			if err != nil {
				for r := range cmds {
					t.Logf("rank %d output:\n%s", r, outputs[r].String())
				}
				t.Fatalf("worker exited with %v", err)
			}
		case <-deadline:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			for r := range cmds {
				t.Logf("rank %d output:\n%s", r, outputs[r].String())
			}
			t.Fatal("workers did not finish within 90s")
		}
	}

	got, err := model.LoadFile(outPath)
	if err != nil {
		t.Fatalf("rank 0 wrote no model: %v", err)
	}
	assertModelsIdentical(t, "multi-process", want, got)
}
