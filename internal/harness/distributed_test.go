package harness

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphword2vec/internal/checkpoint"
	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/model"
)

// TestMain lets the test binary re-exec itself as a distributed worker:
// TestMultiProcessMatchesSimulation spawns copies of this binary with
// GW2V_WORKER_RANK set, giving a true multi-OS-process cluster without
// needing the go toolchain at test time.
func TestMain(m *testing.M) {
	if os.Getenv("GW2V_WORKER_RANK") != "" {
		if err := runWorkerProcess(); err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distTestOpts are the dataset options shared by the parent test and
// the re-exec'd worker processes; both must derive the identical
// dataset, so keep this deterministic and in one place.
func distTestOpts() Options {
	o := tinyOpts()
	o.Epochs = 2
	return o
}

// distTestConfig is the training configuration for the byte-identity
// tests: 4 hosts, deterministic, paper-default combiner.
func distTestConfig(opts Options, mode gluon.Mode) core.Config {
	cfg := distConfig(opts, 4, core.SyncFrequencyRule(4), "MC", mode, opts.BaseAlpha)
	cfg.Epochs = opts.Epochs
	return cfg
}

// simulatedCanonical trains the in-process simulated cluster and
// returns the canonical model.
func simulatedCanonical(t *testing.T, d *Dataset, opts Options, cfg core.Config) *model.Model {
	t.Helper()
	tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Corp, opts.Dim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Canonical
}

// assertModelsIdentical compares every float bit-for-bit.
func assertModelsIdentical(t *testing.T, label string, want, got *model.Model) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil model", label)
	}
	if want.VocabSize() != got.VocabSize() || want.Dim != got.Dim {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, want.VocabSize(), want.Dim, got.VocabSize(), got.Dim)
	}
	for i := range want.Emb.Data {
		if want.Emb.Data[i] != got.Emb.Data[i] {
			t.Fatalf("%s: embedding layer diverges at %d: %v vs %v", label, i, want.Emb.Data[i], got.Emb.Data[i])
		}
	}
	for i := range want.Ctx.Data {
		if want.Ctx.Data[i] != got.Ctx.Data[i] {
			t.Fatalf("%s: training layer diverges at %d: %v vs %v", label, i, want.Ctx.Data[i], got.Ctx.Data[i])
		}
	}
}

// TestEnginesOverTCPMatchSimulation is the tentpole's keystone: four
// free-running single-host engines over localhost TCP sockets must
// produce an embedding byte-identical to the lockstep in-process
// simulation at the same seeds, in every synchronisation mode.
func TestEnginesOverTCPMatchSimulation(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	modes := []gluon.Mode{gluon.RepModelOpt, gluon.PullModel, gluon.RepModelNaive}
	if raceEnabled {
		// The engine/transport concurrency under test is identical in
		// every mode; one suffices for the (much slower) race lane.
		modes = modes[:1]
	}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := distTestConfig(opts, mode)
			want := simulatedCanonical(t, d, opts, cfg)

			trs, err := gluon.NewTCPCluster(cfg.Hosts)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*core.DistributedResult, cfg.Hosts)
			errs := make([]error, cfg.Hosts)
			var wg sync.WaitGroup
			for h := 0; h < cfg.Hosts; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					// Closing on exit lets an errored host's peers fail
					// via connection loss instead of blocking forever.
					defer trs[h].Close()
					results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
				}(h)
			}
			wg.Wait()
			for h, err := range errs {
				if err != nil {
					t.Fatalf("host %d: %v", h, err)
				}
			}
			for h := 1; h < cfg.Hosts; h++ {
				if results[h].Canonical != nil {
					t.Errorf("host %d returned a canonical model; only rank 0 gathers", h)
				}
			}
			assertModelsIdentical(t, mode.String(), want, results[0].Canonical)
			if results[0].Engine.Train.Pairs == 0 {
				t.Error("rank 0 trained no pairs")
			}
		})
	}
}

// TestEnginesOverTCPMatchSimulationFP16: the lossy fp16 codec is
// excluded from bit-identity against lossless runs, but it must still
// be deterministic — the simulated cluster and a real TCP mesh quantize
// identically, so their models stay byte-identical to each other.
func TestEnginesOverTCPMatchSimulationFP16(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := distTestConfig(opts, gluon.RepModelOpt)
	cfg.Wire = gluon.CodecFP16
	want := simulatedCanonical(t, d, opts, cfg)

	// And it must actually be lossy-different from the packed run: if it
	// matched bit-for-bit the quantizer would not be engaged at all.
	lossless := distTestConfig(opts, gluon.RepModelOpt)
	wantLossless := simulatedCanonical(t, d, opts, lossless)
	same := true
	for i := range want.Emb.Data {
		if want.Emb.Data[i] != wantLossless.Emb.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("fp16 model is bit-identical to the lossless run; quantizer not engaged")
	}

	trs, err := gluon.NewTCPCluster(cfg.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*core.DistributedResult, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	var wg sync.WaitGroup
	for h := 0; h < cfg.Hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			defer trs[h].Close()
			results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
	assertModelsIdentical(t, "fp16", want, results[0].Canonical)
}

// workerEnv are the variables the re-exec'd worker reads.
const (
	envWorkerRank   = "GW2V_WORKER_RANK"
	envWorkerPeers  = "GW2V_WORKER_PEERS"
	envWorkerOut    = "GW2V_WORKER_OUT"
	envWorkerMode   = "GW2V_WORKER_MODE"
	envWorkerCkpt   = "GW2V_WORKER_CKPT_DIR"
	envWorkerResume = "GW2V_WORKER_RESUME"
)

// runWorkerProcess is the body of one re-exec'd worker: regenerate the
// deterministic dataset, join the TCP mesh, train, and (on rank 0)
// write the gathered canonical model. With GW2V_WORKER_CKPT_DIR set the
// worker checkpoints every 2 rounds and runs with tight peer-failure
// deadlines; GW2V_WORKER_RESUME=1 additionally asks to resume from the
// newest cluster-wide snapshot.
func runWorkerProcess() error {
	rank, err := strconv.Atoi(os.Getenv(envWorkerRank))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envWorkerRank, err)
	}
	peers := strings.Split(os.Getenv(envWorkerPeers), ",")
	mode, err := gluon.ParseMode(os.Getenv(envWorkerMode))
	if err != nil {
		return err
	}
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		return err
	}
	cfg := distTestConfig(opts, mode)
	mesh := gluon.MeshConfig{
		Rank:     rank,
		Peers:    peers,
		Checksum: cfg.Checksum(d.Vocab.Size(), d.Corp.Len(), opts.Dim),
		Timeout:  20 * time.Second,
	}
	ckptDir := os.Getenv(envWorkerCkpt)
	if ckptDir != "" {
		// A SIGKILLed peer drops its connections; survivors must fail
		// fast (and visibly) instead of hanging the test.
		mesh.TCP = gluon.TCPOptions{HeartbeatInterval: 50 * time.Millisecond, PeerLossGrace: 500 * time.Millisecond}
	}
	tr, err := gluon.DialMesh(mesh)
	if err != nil {
		return err
	}
	defer tr.Close()
	ro := core.RunOptions{}
	if ckptDir != "" {
		ro.Checkpoint = &core.CheckpointPolicy{Dir: ckptDir, Every: 2, Resume: os.Getenv(envWorkerResume) == "1"}
	}
	res, err := core.RunDistributedOpts(cfg, rank, tr, d.Vocab, d.Neg, d.Corp, opts.Dim, ro)
	if err != nil {
		return err
	}
	// The parent parses this line to verify the cluster really resumed.
	fmt.Printf("resumed-from=%d\n", res.ResumedFrom)
	if res.Canonical != nil {
		return res.Canonical.SaveFile(os.Getenv(envWorkerOut))
	}
	return nil
}

// TestMultiProcessMatchesSimulation launches four real OS processes
// (re-execs of this test binary) that bootstrap a TCP mesh over
// loopback, train, and gather onto rank 0 — whose written model must be
// byte-identical to the in-process simulation.
func TestMultiProcessMatchesSimulation(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	mode := gluon.RepModelOpt
	cfg := distTestConfig(opts, mode)
	want := simulatedCanonical(t, d, opts, cfg)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, cfg.Hosts)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	outPath := filepath.Join(t.TempDir(), "canonical.bin")

	cmds := make([]*exec.Cmd, cfg.Hosts)
	outputs := make([]strings.Builder, cfg.Hosts)
	for r := 0; r < cfg.Hosts; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorkerRank+"="+strconv.Itoa(r),
			envWorkerPeers+"="+strings.Join(addrs, ","),
			envWorkerOut+"="+outPath,
			envWorkerMode+"="+mode.String(),
		)
		cmd.Stdout = &outputs[r]
		cmd.Stderr = &outputs[r]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	deadline := time.After(90 * time.Second)
	waitErrs := make(chan error, cfg.Hosts)
	for _, cmd := range cmds {
		go func(cmd *exec.Cmd) { waitErrs <- cmd.Wait() }(cmd)
	}
	for i := 0; i < cfg.Hosts; i++ {
		select {
		case err := <-waitErrs:
			if err != nil {
				for r := range cmds {
					t.Logf("rank %d output:\n%s", r, outputs[r].String())
				}
				t.Fatalf("worker exited with %v", err)
			}
		case <-deadline:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			for r := range cmds {
				t.Logf("rank %d output:\n%s", r, outputs[r].String())
			}
			t.Fatal("workers did not finish within 90s")
		}
	}

	got, err := model.LoadFile(outPath)
	if err != nil {
		t.Fatalf("rank 0 wrote no model: %v", err)
	}
	assertModelsIdentical(t, "multi-process", want, got)
}

// freshLoopbackAddrs reserves one loopback port per rank.
func freshLoopbackAddrs(t *testing.T, hosts int) []string {
	t.Helper()
	addrs := make([]string, hosts)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// spawnWorkers re-execs one worker process per rank with the given
// extra environment.
func spawnWorkers(t *testing.T, hosts int, addrs []string, outPath, mode string, extra []string) ([]*exec.Cmd, []*strings.Builder) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, hosts)
	outputs := make([]*strings.Builder, hosts)
	for r := 0; r < hosts; r++ {
		outputs[r] = &strings.Builder{}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorkerRank+"="+strconv.Itoa(r),
			envWorkerPeers+"="+strings.Join(addrs, ","),
			envWorkerOut+"="+outPath,
			envWorkerMode+"="+mode,
		)
		cmd.Env = append(cmd.Env, extra...)
		cmd.Stdout = outputs[r]
		cmd.Stderr = outputs[r]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	return cmds, outputs
}

// waitWorkers waits for every worker with a shared deadline and returns
// the per-rank exit errors.
func waitWorkers(t *testing.T, cmds []*exec.Cmd, outputs []*strings.Builder, timeout time.Duration) []error {
	t.Helper()
	type exit struct {
		rank int
		err  error
	}
	ch := make(chan exit, len(cmds))
	for r, cmd := range cmds {
		go func(r int, cmd *exec.Cmd) { ch <- exit{r, cmd.Wait()} }(r, cmd)
	}
	errs := make([]error, len(cmds))
	deadline := time.After(timeout)
	for range cmds {
		select {
		case e := <-ch:
			errs[e.rank] = e.err
		case <-deadline:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			for r := range cmds {
				t.Logf("rank %d output:\n%s", r, outputs[r].String())
			}
			t.Fatalf("workers did not finish within %v", timeout)
		}
	}
	return errs
}

// resumedFromLine extracts the worker's reported resume round.
func resumedFromLine(out string) (uint32, bool) {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "resumed-from="); ok {
			n, err := strconv.ParseUint(rest, 10, 32)
			if err == nil {
				return uint32(n), true
			}
		}
	}
	return 0, false
}

// TestMeshRedialAfterPeerRestart is the elastic-recovery e2e: a real
// 4-process TCP cluster checkpoints as it trains, rank 1 is SIGKILLed
// mid-run, the survivors detect the loss and exit, and a relaunch of
// all four processes with resume enabled re-forms the mesh, negotiates
// the newest cluster-wide checkpoint, and finishes with a model
// byte-identical to an uninterrupted simulated run.
func TestMeshRedialAfterPeerRestart(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	mode := gluon.RepModelOpt
	cfg := distTestConfig(opts, mode)
	want := simulatedCanonical(t, d, opts, cfg)

	ckptDir := t.TempDir()
	outPath := filepath.Join(t.TempDir(), "canonical.bin")
	const victim = 1

	// Interrupted attempt: kill the victim once its first checkpoint
	// generation is on disk (round 2 of 12 — the bulk of the run is
	// still ahead, so no rank can have finished).
	cmds, outputs := spawnWorkers(t, cfg.Hosts, freshLoopbackAddrs(t, cfg.Hosts), outPath, mode.String(),
		[]string{envWorkerCkpt + "=" + ckptDir})
	victimCkpt := checkpoint.NewStore(ckptDir, victim).Path()
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(victimCkpt); err == nil {
			break
		}
		if time.Now().After(killDeadline) {
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			t.Fatalf("rank %d never wrote a checkpoint", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for r, err := range waitWorkers(t, cmds, outputs, 60*time.Second) {
		if err == nil {
			t.Fatalf("rank %d exited cleanly despite the killed peer:\n%s", r, outputs[r].String())
		}
	}
	if _, err := os.Stat(outPath); err == nil {
		t.Fatal("interrupted run wrote a canonical model")
	}

	// Recovery attempt: relaunch every rank with resume enabled on
	// fresh ports. The cluster must agree on a checkpointed round and
	// reproduce the uninterrupted model bit for bit.
	cmds, outputs = spawnWorkers(t, cfg.Hosts, freshLoopbackAddrs(t, cfg.Hosts), outPath, mode.String(),
		[]string{envWorkerCkpt + "=" + ckptDir, envWorkerResume + "=1"})
	for r, err := range waitWorkers(t, cmds, outputs, 90*time.Second) {
		if err != nil {
			for i := range cmds {
				t.Logf("rank %d output:\n%s", i, outputs[i].String())
			}
			t.Fatalf("resume rank %d exited with %v", r, err)
		}
	}
	for r := range cmds {
		round, ok := resumedFromLine(outputs[r].String())
		if !ok {
			t.Fatalf("rank %d reported no resume round:\n%s", r, outputs[r].String())
		}
		if round == 0 {
			t.Errorf("rank %d resumed from round 0, want a checkpointed round", r)
		}
	}
	got, err := model.LoadFile(outPath)
	if err != nil {
		t.Fatalf("resumed rank 0 wrote no model: %v", err)
	}
	assertModelsIdentical(t, "redial-resume", want, got)
}
