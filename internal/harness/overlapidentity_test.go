package harness

import (
	"fmt"
	"sync"
	"testing"

	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
)

// overlapTweak returns a trainForIdentity tweak that turns on the
// double-buffered sync overlap pipeline, and (when tcp is set) drives
// the lockstep trainer over a loopback TCP cluster.
func overlapTweak(tcp bool) func(*core.Trainer, *core.Config) {
	return func(tr *core.Trainer, cfg *core.Config) {
		if cfg != nil {
			cfg.SyncOverlap = true
		}
		if tr != nil && tcp {
			tr.TransportFactory = tcpTransportFactory
		}
	}
}

// TestOverlapBitIdentityPinned is the tentpole contract of the overlap
// pipeline, pinned to the same seed-state hashes as the serialized
// engine (TestSyncBitIdentityPinned): turning on Config.SyncOverlap must
// be invisible in the trained bits across modes × codecs × transports.
// Gating only delays row accesses until the in-flight round finalises
// them; the fold order and every RNG stream are untouched, so the
// overlapped run must land on the identical hash — not merely match a
// fresh serialized twin. The -short lane runs a reduced slice.
func TestOverlapBitIdentityPinned(t *testing.T) {
	type cell struct {
		workload string
		mode     gluon.Mode
		codec    gluon.Codec
		tcp      bool
	}
	var cells []cell
	if testing.Short() {
		cells = []cell{
			{"text", gluon.RepModelNaive, gluon.CodecPacked, false},
			{"text", gluon.RepModelOpt, gluon.CodecPacked, false},
			{"text", gluon.RepModelOpt, gluon.CodecPacked, true},
			{"text", gluon.PullModel, gluon.CodecPacked, false},
			{"text", gluon.RepModelOpt, gluon.CodecFP16, false},
			{"graph", gluon.RepModelOpt, gluon.CodecPacked, true},
		}
	} else {
		// Full mode × codec × transport diagonal on text; graph pins the
		// walk-workload slice on the mode the paper's sparse rounds use.
		for _, mode := range []gluon.Mode{gluon.RepModelNaive, gluon.RepModelOpt, gluon.PullModel} {
			for _, codec := range []gluon.Codec{gluon.CodecRaw, gluon.CodecPacked, gluon.CodecFP16} {
				for _, tcp := range []bool{false, true} {
					cells = append(cells, cell{"text", mode, codec, tcp})
				}
			}
		}
		for _, codec := range []gluon.Codec{gluon.CodecRaw, gluon.CodecPacked, gluon.CodecFP16} {
			for _, tcp := range []bool{false, true} {
				cells = append(cells, cell{"graph", gluon.RepModelOpt, codec, tcp})
			}
		}
	}
	for _, c := range cells {
		c := c
		transport := "inproc"
		if c.tcp {
			transport = "tcp"
		}
		t.Run(fmt.Sprintf("%s/%v/%v/%s", c.workload, c.mode, c.codec, transport), func(t *testing.T) {
			got := trainForIdentity(t, c.workload, c.mode, c.codec, overlapTweak(c.tcp))
			if want := wantHash(c.workload, c.codec); got != want {
				t.Errorf("overlap: model hash %s, want seed hash %s", got, want)
			}
		})
	}
}

// TestOverlapTCPFreeRunning is the overlap race hammer: four
// free-running engines over localhost TCP — each on its own goroutine,
// out of phase with its peers, with the double-buffered pipeline's
// background sync and gated compute racing against real socket decode
// workers — must still produce a model byte-identical to the serialized
// in-process simulation. Run under -race this exercises every
// cross-goroutine edge of the overlap path: progress snapshots, gate
// wake-ups, the touched double buffer, and buffer-generation reuse.
func TestOverlapTCPFreeRunning(t *testing.T) {
	opts := distTestOpts()
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	modes := []gluon.Mode{gluon.RepModelOpt, gluon.PullModel, gluon.RepModelNaive}
	if raceEnabled {
		// Keep the slow race lane focused on the sparse mode; the gate
		// and progress concurrency under test is identical in all three.
		modes = modes[:1]
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := distTestConfig(opts, mode)
			want := simulatedCanonical(t, d, opts, cfg) // serialized reference

			cfg.SyncOverlap = true
			trs, err := gluon.NewTCPCluster(cfg.Hosts)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*core.DistributedResult, cfg.Hosts)
			errs := make([]error, cfg.Hosts)
			var wg sync.WaitGroup
			for h := 0; h < cfg.Hosts; h++ {
				wg.Add(1)
				go func(h int) {
					defer wg.Done()
					defer trs[h].Close()
					results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
				}(h)
			}
			wg.Wait()
			for h, err := range errs {
				if err != nil {
					t.Fatalf("host %d: %v", h, err)
				}
			}
			assertModelsIdentical(t, "overlap/"+mode.String(), want, results[0].Canonical)
			var hidden float64
			for _, r := range results {
				hidden += r.Engine.OverlapSeconds
			}
			if hidden <= 0 {
				t.Error("free-running overlapped cluster hid no sync time")
			}
		})
	}
}
