package harness

import (
	"os"
	"testing"
)

func TestProbe16(t *testing.T) {
	if os.Getenv("GW2V_P16") == "" {
		t.Skip()
	}
	opts := tinyOpts()
	opts.Epochs = 16
	opts.QuestionsPerCategory = 12
	d, err := LoadDataset("1-billion", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runW2V(d, opts, opts.BaseAlpha, true)
	if err != nil {
		t.Fatal(err)
	}
	var c []float64
	for _, a := range res.PerEpochAcc {
		c = append(c, a.Total)
	}
	t.Logf("W2V 16ep: %v", fmtCurve(c))
}
