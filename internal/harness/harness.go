// Package harness regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster: workload generation, baseline
// systems, parameter sweeps, and plain-text renderings of the same rows
// and series the paper reports — plus the graph (random-walk) workload
// experiment demonstrating the Any2Vec seam (graphwork.go). See
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package harness

import (
	"errors"
	"fmt"
	"io"

	"graphword2vec/internal/corpus"
	"graphword2vec/internal/eval"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/model"
	"graphword2vec/internal/synth"
	"graphword2vec/internal/vocab"
)

// Options configures a harness run. The zero value is unusable; call
// WithDefaults or start from Defaults().
type Options struct {
	// Scale selects dataset size (tiny / small / full).
	Scale synth.Scale
	// Dim overrides the embedding dimensionality (0 = scale default;
	// the paper uses 200).
	Dim int
	// Epochs is the training epoch count (0 = 16, as in the paper).
	Epochs int
	// Hosts is the cluster size for the fixed-size experiments
	// (Tables 2–3, Figures 6–7); 0 = 32 as in the paper.
	Hosts int
	// ModeledThreads is the per-host core count in the simulated-time
	// model (0 = 16, the paper's machines).
	ModeledThreads int
	// ThreadEff is the Hogwild scaling efficiency for modelled threads.
	ThreadEff float64
	// Cost is the network cost model (zero value = DefaultCostModel).
	Cost gluon.CostModel
	// Seed drives data generation and training.
	Seed uint64
	// QuestionsPerCategory sizes the analogy benchmark (0 = 12).
	QuestionsPerCategory int
	// BaseAlpha is the sequential-optimal learning rate — the α the
	// paper's §3 argument assumes ("large enough that sequential SGD
	// converges fast and anything larger diverges"). 0 selects the
	// scale-matched default: 0.025 (the word2vec default) at small/full
	// scale, 0.0125 at tiny scale where the corpus is 10× smaller.
	BaseAlpha float32
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// Defaults returns the standard configuration at the given scale.
func Defaults(scale synth.Scale) Options {
	return Options{
		Scale:                scale,
		ModeledThreads:       16,
		ThreadEff:            0.85,
		Cost:                 gluon.DefaultCostModel(),
		Seed:                 1,
		QuestionsPerCategory: 12,
	}
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.Dim == 0 {
		o.Dim = o.Scale.Dim()
	}
	// Training budget and cluster size scale with the corpus: the paper's
	// 16 epochs × 32 hosts assumes 0.7–3.6 G-token corpora. At tiny scale
	// (~10⁴× smaller) 16 epochs overtrains — the planted structure erodes
	// after ~8 epochs (see TestConvergenceCalibration) — and a 32-way
	// partition leaves each host only a few hundred tokens per round.
	if o.Epochs == 0 {
		if o.Scale == synth.ScaleTiny {
			o.Epochs = 8
		} else {
			o.Epochs = 16
		}
	}
	if o.Hosts == 0 {
		if o.Scale == synth.ScaleTiny {
			o.Hosts = 8
		} else {
			o.Hosts = 32
		}
	}
	if o.ModeledThreads == 0 {
		o.ModeledThreads = 16
	}
	if o.ThreadEff == 0 {
		o.ThreadEff = 0.85
	}
	if o.Cost == (gluon.CostModel{}) {
		o.Cost = gluon.DefaultCostModel()
	}
	if o.QuestionsPerCategory == 0 {
		o.QuestionsPerCategory = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaseAlpha == 0 {
		if o.Scale == synth.ScaleTiny {
			o.BaseAlpha = 0.0125
		} else {
			o.BaseAlpha = 0.025
		}
	}
	return o
}

// out returns the output writer (never nil).
func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Dataset is a fully materialised workload: generated corpus, vocabulary,
// negative-sampling table, and the analogy benchmark.
type Dataset struct {
	Name      string
	Cfg       synth.Config
	Vocab     *vocab.Vocabulary
	Neg       *vocab.UnigramTable
	Corp      *corpus.Corpus
	Questions []eval.Question
	// TextBytes is the corpus size in its on-disk text form (Table 1).
	TextBytes int64
}

// LoadDataset generates and indexes one of the paper's dataset stand-ins.
func LoadDataset(name string, opts Options) (*Dataset, error) {
	opts = opts.WithDefaults()
	cfg, err := synth.Preset(name, opts.Scale)
	if err != nil {
		return nil, err
	}
	return materialize(cfg, opts)
}

// materialize turns a generator configuration into a trainable Dataset.
func materialize(cfg synth.Config, opts Options) (*Dataset, error) {
	opts = opts.WithDefaults()
	data, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}

	// Vocabulary pass (Algorithm 1 line 3) from generated token counts.
	counts := make([]int64, len(data.Names))
	for _, tok := range data.Tokens {
		counts[tok]++
	}
	b := vocab.NewBuilder()
	for id, c := range counts {
		if c > 0 {
			b.AddN(data.Names[id], c)
		}
	}
	// Subsampling threshold, scale-matched: the paper's t = 1e-4 assumes
	// vocabularies of 0.4–2.8 M words where content words have relative
	// frequency ~1e-5. Our vocabularies are ~10³ smaller, so frequencies
	// are ~10³ larger; t = 5e-3 puts the keep-probability of structured
	// (content) words near 1 while still heavily discarding the most
	// frequent Zipf fillers — the same regime as the paper.
	vopts := vocab.Options{MinCount: 5, Sample: 5e-3}
	v, err := b.Build(vopts)
	if err != nil {
		return nil, err
	}
	neg, err := vocab.NewUnigramTable(v)
	if err != nil {
		return nil, err
	}

	// Remap generation-space ids to vocabulary ids, dropping words that
	// fell below min-count (exactly what corpus.Load does for text).
	remap := make([]int32, len(data.Names))
	for id, name := range data.Names {
		remap[id] = v.ID(name)
	}
	ids := make([]int32, 0, len(data.Tokens))
	for _, tok := range data.Tokens {
		if vid := remap[tok]; vid >= 0 {
			ids = append(ids, vid)
		}
	}

	sq, err := synth.Questions(cfg, opts.QuestionsPerCategory, opts.Seed+77)
	if err != nil {
		return nil, err
	}
	qs := make([]eval.Question, len(sq))
	for i, q := range sq {
		qs[i] = eval.Question{A: q.A, B: q.B, C: q.C, D: q.D, Category: q.Category, Semantic: q.Semantic}
	}

	return &Dataset{
		Name:      cfg.Name,
		Cfg:       cfg,
		Vocab:     v,
		Neg:       neg,
		Corp:      corpus.FromIDs(ids),
		Questions: qs,
		TextBytes: data.TextBytes(),
	}, nil
}

// LoadAll materialises all three datasets.
func LoadAll(opts Options) ([]*Dataset, error) {
	var out []*Dataset
	for _, name := range synth.DatasetNames {
		ds, err := LoadDataset(name, opts)
		if err != nil {
			return nil, fmt.Errorf("harness: dataset %s: %w", name, err)
		}
		out = append(out, ds)
	}
	return out, nil
}

// Accuracies bundles the three aggregate analogy accuracies (percent).
type Accuracies struct {
	Semantic  float64
	Syntactic float64
	Total     float64
}

// Evaluate runs the analogy benchmark against a model.
func (d *Dataset) Evaluate(m *model.Model) (Accuracies, error) {
	if m == nil {
		return Accuracies{}, errors.New("harness: nil model")
	}
	res, err := eval.Analogies(m, d.Vocab, d.Questions, eval.Options{})
	if err != nil {
		return Accuracies{}, err
	}
	return Accuracies{
		Semantic:  res.Semantic.Percent(),
		Syntactic: res.Syntactic.Percent(),
		Total:     res.Total.Percent(),
	}, nil
}
