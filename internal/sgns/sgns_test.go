package sgns

import (
	"math"
	"strings"
	"testing"

	"graphword2vec/internal/bitset"
	"graphword2vec/internal/model"
	"graphword2vec/internal/vecmath"
	"graphword2vec/internal/vocab"
	"graphword2vec/internal/xrand"
)

// buildTiny constructs a trainer over the given space-separated corpus.
func buildTiny(t testing.TB, text string, dim int, p Params) (*Trainer, []int32) {
	t.Helper()
	b, err := vocab.CountFromTokens(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Build(vocab.Options{MinCount: 1, Sample: 0})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := vocab.NewUnigramTable(v)
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(v.Size(), dim)
	m.InitRandom(1)
	tr, err := NewTrainer(m, v, neg, p)
	if err != nil {
		t.Fatal(err)
	}
	var tokens []int32
	for _, w := range strings.Fields(text) {
		tokens = append(tokens, v.ID(w))
	}
	return tr, tokens
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Window: 0, Negatives: 5}).Validate(); err == nil {
		t.Error("zero window accepted")
	}
	if err := (Params{Window: 5, Negatives: -1}).Validate(); err == nil {
		t.Error("negative negatives accepted")
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestNewTrainerSizeMismatch(t *testing.T) {
	b := vocab.NewBuilder()
	b.Add("a")
	v, err := b.Build(vocab.Options{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(5, 4) // wrong size
	if _, err := NewTrainer(m, v, nil, DefaultParams()); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestTrainTokensDeterministic(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 50)
	p := Params{Window: 2, Negatives: 3}
	tr1, tok1 := buildTiny(t, text, 8, p)
	tr2, tok2 := buildTiny(t, text, 8, p)
	var s1, s2 Stats
	tr1.TrainTokens(tok1, 0.05, xrand.New(7), nil, &s1, nil)
	tr2.TrainTokens(tok2, 0.05, xrand.New(7), nil, &s2, nil)
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range tr1.Model.Emb.Data {
		if tr1.Model.Emb.Data[i] != tr2.Model.Emb.Data[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestTrainTokensTouchedTracking(t *testing.T) {
	text := strings.Repeat("a b ", 100) + strings.Repeat("zzz ", 3)
	p := Params{Window: 2, Negatives: 2}
	tr, tokens := buildTiny(t, text, 4, p)
	touched := bitset.New(tr.Vocab.Size())
	var st Stats
	// Train only on the "a b" prefix.
	tr.TrainTokens(tokens[:200], 0.05, xrand.New(3), touched, &st, nil)
	if !touched.Get(int(tr.Vocab.ID("a"))) || !touched.Get(int(tr.Vocab.ID("b"))) {
		t.Error("trained words not marked touched")
	}
	// zzz can only be touched via negative sampling; it may or may not
	// be, but every touched node must have nonzero count in vocab.
	if touched.Count() > tr.Vocab.Size() {
		t.Error("touched more nodes than exist")
	}
	if st.TokensSeen != 200 || st.TokensKept != 200 {
		t.Errorf("stats: seen=%d kept=%d, want 200/200 (no subsampling)", st.TokensSeen, st.TokensKept)
	}
	if st.Pairs == 0 {
		t.Error("no pairs trained")
	}
}

func TestTouchedIsConservative(t *testing.T) {
	// Every model row that changed must be marked touched (the sparse
	// sync depends on this invariant; the converse may not hold).
	text := strings.Repeat("a b c d ", 30)
	p := Params{Window: 2, Negatives: 2}
	tr, tokens := buildTiny(t, text, 4, p)
	before := tr.Model.Clone()
	touched := bitset.New(tr.Vocab.Size())
	var st Stats
	tr.TrainTokens(tokens, 0.05, xrand.New(5), touched, &st, nil)
	for id := 0; id < tr.Vocab.Size(); id++ {
		changed := false
		for d := 0; d < tr.Model.Dim; d++ {
			if tr.Model.EmbRow(int32(id))[d] != before.EmbRow(int32(id))[d] ||
				tr.Model.CtxRow(int32(id))[d] != before.CtxRow(int32(id))[d] {
				changed = true
				break
			}
		}
		if changed && !touched.Get(id) {
			t.Fatalf("node %d changed but not marked touched", id)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Two interleaved word pairs that always co-occur: loss must drop.
	text := strings.Repeat("cat dog ", 200) + strings.Repeat("sun moon ", 200)
	p := Params{Window: 1, Negatives: 5, TrackLoss: true}
	tr, tokens := buildTiny(t, text, 16, p)
	r := xrand.New(11)
	var first, last Stats
	tr.TrainTokens(tokens, 0.1, r, nil, &first, nil)
	for i := 0; i < 8; i++ {
		var st Stats
		tr.TrainTokens(tokens, 0.1, r, nil, &st, nil)
		last = st
	}
	if last.MeanLoss() >= first.MeanLoss() {
		t.Errorf("loss did not decrease: first %.4f, last %.4f", first.MeanLoss(), last.MeanLoss())
	}
}

func TestTrainingLearnsCooccurrence(t *testing.T) {
	// cat and dog occur in identical context slots ("pet _ runs"); sun and
	// moon in different slots ("sky _ glows"). Paradigmatically similar
	// words must end up with similar embeddings.
	text := strings.Repeat("pet cat runs pet dog runs sky sun glows sky moon glows ", 200)
	p := Params{Window: 1, Negatives: 5}
	tr, tokens := buildTiny(t, text, 16, p)
	r := xrand.New(2)
	for i := 0; i < 10; i++ {
		var st Stats
		tr.TrainTokens(tokens, 0.1, r, nil, &st, nil)
	}
	v := tr.Vocab
	m := tr.Model
	// Syntagmatic: co-occurring pair scores higher than non-co-occurring.
	pos := vecmath.Dot(m.EmbRow(v.ID("cat")), m.CtxRow(v.ID("pet")))
	neg := vecmath.Dot(m.EmbRow(v.ID("cat")), m.CtxRow(v.ID("sky")))
	if pos <= neg {
		t.Errorf("cat·pet (%v) should exceed cat·sky (%v)", pos, neg)
	}
	// Paradigmatic: shared-slot words drift together.
	simPair := vecmath.CosineSim(m.EmbRow(v.ID("cat")), m.EmbRow(v.ID("dog")))
	simCross := vecmath.CosineSim(m.EmbRow(v.ID("cat")), m.EmbRow(v.ID("sun")))
	if simPair <= simCross {
		t.Errorf("within-pair sim %v should exceed cross sim %v", simPair, simCross)
	}
}

// TestGradientNumericCheck verifies that one trainPair step moves the
// parameters along the negative analytic gradient of the SGNS loss, by
// comparing against a numerically differentiated loss on a 1-negative
// configuration.
func TestGradientNumericCheck(t *testing.T) {
	text := "w c n n n" // center w, context c, negatives drawn from vocab
	p := Params{Window: 1, Negatives: 1}
	tr, _ := buildTiny(t, text, 6, p)
	v := tr.Vocab
	m := tr.Model
	// Force known values.
	rng := xrand.New(4)
	for i := range m.Emb.Data {
		m.Emb.Data[i] = float32(rng.NormFloat64()) * 0.3
		m.Ctx.Data[i] = float32(rng.NormFloat64()) * 0.3
	}
	ctxID, centerID := v.ID("c"), v.ID("w")
	embBefore := append([]float32(nil), m.EmbRow(ctxID)...)
	ctxBefore := append([]float32(nil), m.CtxRow(centerID)...)

	// Positive-pair-only check: temporarily use 0 negatives.
	tr.Params.Negatives = 0
	neu1e := make([]float32, m.Dim)
	var st Stats
	const alpha = 1e-3
	tr.trainPair(ctxID, centerID, alpha, xrand.New(1), nil, &st, neu1e)

	// Analytic: ∂L/∂emb = -(1-σ(f))·ctx ; update is emb += α(1-σ(f))·ctx.
	f := vecmath.Dot(embBefore, ctxBefore)
	g := (1 - vecmath.SigmoidExact(float64(f))) * alpha
	for d := 0; d < m.Dim; d++ {
		wantEmb := embBefore[d] + float32(g)*ctxBefore[d]
		if math.Abs(float64(m.EmbRow(ctxID)[d]-wantEmb)) > 2e-2*alpha+1e-6 {
			t.Fatalf("emb[%d] = %v, want %v", d, m.EmbRow(ctxID)[d], wantEmb)
		}
		wantCtx := ctxBefore[d] + float32(g)*embBefore[d]
		if math.Abs(float64(m.CtxRow(centerID)[d]-wantCtx)) > 2e-2*alpha+1e-6 {
			t.Fatalf("ctx[%d] = %v, want %v", d, m.CtxRow(centerID)[d], wantCtx)
		}
	}

	// Numeric cross-check on the loss derivative w.r.t. f:
	// dL/df = σ(f) - 1 for label 1.
	const h = 1e-6
	num := (pairLoss(float64(f)+h, 1) - pairLoss(float64(f)-h, 1)) / (2 * h)
	ana := vecmath.SigmoidExact(float64(f)) - 1
	if math.Abs(num-ana) > 1e-4 {
		t.Errorf("loss derivative: numeric %v, analytic %v", num, ana)
	}
}

func TestPairLossSaturation(t *testing.T) {
	if l := pairLoss(10, 1); l > 0.01 {
		t.Errorf("confident correct positive should have ~0 loss, got %v", l)
	}
	if l := pairLoss(-10, 1); l < 5 {
		t.Errorf("confident wrong positive should have large loss, got %v", l)
	}
	if l := pairLoss(-10, 0); l > 0.01 {
		t.Errorf("confident correct negative should have ~0 loss, got %v", l)
	}
}

func TestHogwildRunsAndCallsOnEpoch(t *testing.T) {
	if raceEnabled {
		t.Skip("Hogwild threads race by design")
	}
	text := strings.Repeat("a b c d e f ", 100)
	p := Params{Window: 2, Negatives: 3}
	tr, tokens := buildTiny(t, text, 8, p)
	var epochs []int
	st := tr.TrainHogwild(tokens, HogwildConfig{
		Threads: 2,
		Epochs:  3,
		Alpha:   0.05,
		Seed:    9,
		OnEpoch: func(e int, _ Stats) { epochs = append(epochs, e) },
	})
	if len(epochs) != 3 || epochs[2] != 2 {
		t.Errorf("OnEpoch calls = %v", epochs)
	}
	if st.TokensSeen != int64(len(tokens)*3) {
		t.Errorf("TokensSeen = %d, want %d", st.TokensSeen, len(tokens)*3)
	}
	if st.Pairs == 0 {
		t.Error("no pairs trained")
	}
}

func TestHogwildSingleThreadDeterministic(t *testing.T) {
	text := strings.Repeat("p q r s ", 50)
	p := Params{Window: 2, Negatives: 2}
	tr1, tok := buildTiny(t, text, 4, p)
	tr2, _ := buildTiny(t, text, 4, p)
	cfg := HogwildConfig{Threads: 1, Epochs: 2, Alpha: 0.05, Seed: 13}
	tr1.TrainHogwild(tok, cfg)
	tr2.TrainHogwild(tok, cfg)
	for i := range tr1.Model.Emb.Data {
		if tr1.Model.Emb.Data[i] != tr2.Model.Emb.Data[i] {
			t.Fatal("single-thread Hogwild not deterministic")
		}
	}
}

func TestBatchedRuns(t *testing.T) {
	if raceEnabled {
		t.Skip("Hogwild threads race by design")
	}
	text := strings.Repeat("a b c d ", 200)
	p := Params{Window: 2, Negatives: 3}
	tr, tokens := buildTiny(t, text, 8, p)
	called := 0
	st := tr.TrainBatched(tokens, BatchedConfig{
		JobWords: 64,
		Threads:  2,
		Epochs:   2,
		Alpha:    0.05,
		Seed:     4,
		OnEpoch:  func(int, Stats) { called++ },
	})
	if called != 2 {
		t.Errorf("OnEpoch called %d times, want 2", called)
	}
	if st.TokensSeen != int64(len(tokens)*2) {
		t.Errorf("TokensSeen = %d", st.TokensSeen)
	}
}

func TestStatsAddAndMeanLoss(t *testing.T) {
	a := Stats{TokensSeen: 1, TokensKept: 2, Pairs: 3, LossSum: 4, LossEdges: 2}
	b := Stats{TokensSeen: 10, TokensKept: 20, Pairs: 30, LossSum: 6, LossEdges: 3}
	a.Add(b)
	if a.TokensSeen != 11 || a.Pairs != 33 || a.LossEdges != 5 {
		t.Errorf("Add result: %+v", a)
	}
	if got := a.MeanLoss(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanLoss = %v, want 2", got)
	}
	var empty Stats
	if empty.MeanLoss() != 0 {
		t.Error("empty MeanLoss should be 0")
	}
}

func TestSubsamplingReducesKept(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("the ")
	}
	sb.WriteString("rare")
	b, err := vocab.CountFromTokens(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Build(vocab.Options{MinCount: 1, Sample: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := vocab.NewUnigramTable(v)
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(v.Size(), 4)
	m.InitRandom(1)
	tr, err := NewTrainer(m, v, neg, Params{Window: 2, Negatives: 1})
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]int32, 5000)
	for i := range tokens {
		tokens[i] = v.ID("the")
	}
	var st Stats
	tr.TrainTokens(tokens, 0.05, xrand.New(1), nil, &st, nil)
	if st.TokensKept >= st.TokensSeen/2 {
		t.Errorf("subsampling kept %d of %d; expected heavy discard", st.TokensKept, st.TokensSeen)
	}
}

// TestTrainTokensZeroAllocs pins the zero-allocation contract of the
// steady-state hot path: with a reused Scratch, TrainTokens allocates
// nothing per call.
func TestTrainTokensZeroAllocs(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 100)
	tr, tokens := buildTiny(t, text, 32, Params{Window: 5, Negatives: 5})
	sc := tr.NewScratch()
	touched := bitset.New(tr.Vocab.Size())
	r := xrand.New(1)
	var st Stats
	allocs := testing.AllocsPerRun(10, func() {
		tr.TrainTokens(tokens, 0.025, r, touched, &st, sc)
	})
	if allocs != 0 {
		t.Errorf("TrainTokens with scratch: %v allocs/op, want 0", allocs)
	}
}

// benchTrainTokens runs the training benchmark once per kernel set so
// SIMD and portable numbers land side by side.
func benchTrainTokens(b *testing.B, dim int) {
	text := strings.Repeat("a b c d e f g h i j k l m n o p ", 500)
	tr, tokens := buildTiny(b, text, dim, Params{Window: 5, Negatives: 15})
	r := xrand.New(1)
	sc := tr.NewScratch()
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var st Stats
			tr.TrainTokens(tokens, 0.025, r, nil, &st, sc)
		}
	}
	wasOn := vecmath.SIMDEnabled()
	defer vecmath.SetSIMD(wasOn)
	if vecmath.SIMDAvailable() {
		vecmath.SetSIMD(true)
		b.Run(vecmath.KernelName(), run)
	}
	vecmath.SetSIMD(false)
	b.Run("generic", run)
}

// BenchmarkTrainTokens is the repo's headline compute benchmark: the
// per-token cost of the full SGNS operator (subsampling, dynamic window,
// negative sampling, gradient updates) at dim 128. Perf PRs record its
// before/after in EXPERIMENTS.md.
func BenchmarkTrainTokens(b *testing.B) { benchTrainTokens(b, 128) }

func BenchmarkTrainTokensDim100(b *testing.B) { benchTrainTokens(b, 100) }
