package sgns

import (
	"strings"
	"testing"

	"graphword2vec/internal/bitset"
	"graphword2vec/internal/model"
	"graphword2vec/internal/vocab"
	"graphword2vec/internal/xrand"
)

// buildWithSampling is buildTiny with frequent-word subsampling enabled.
func buildWithSampling(t testing.TB, text string, dim int, p Params, sample float64) (*Trainer, []int32) {
	t.Helper()
	b, err := vocab.CountFromTokens(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Build(vocab.Options{MinCount: 1, Sample: sample})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := vocab.NewUnigramTable(v)
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(v.Size(), dim)
	m.InitRandom(1)
	tr, err := NewTrainer(m, v, neg, p)
	if err != nil {
		t.Fatal(err)
	}
	var tokens []int32
	for _, w := range strings.Fields(text) {
		if id := v.ID(w); id >= 0 {
			tokens = append(tokens, id)
		}
	}
	return tr, tokens
}

// TestInspectMatchesTrain pins the PullModel soundness invariant: the
// inspection pass with the same seed must predict exactly the node set
// the training pass touches.
func TestInspectMatchesTrain(t *testing.T) {
	text := strings.Repeat("a b c d e f g h i j ", 100)
	for _, params := range []Params{
		{Window: 2, Negatives: 3},
		{Window: 5, Negatives: 15},
		{Window: 1, Negatives: 0},
	} {
		tr, tokens := buildTiny(t, text, 8, params)
		touched := bitset.New(tr.Vocab.Size())
		access := bitset.New(tr.Vocab.Size())
		var st Stats
		tr.TrainTokens(tokens, 0.05, xrand.New(99), touched, &st, nil)
		tr.InspectTokens(tokens, xrand.New(99), access, nil)
		for i := 0; i < tr.Vocab.Size(); i++ {
			if touched.Get(i) != access.Get(i) {
				t.Fatalf("params %+v: node %d touched=%v access=%v", params, i, touched.Get(i), access.Get(i))
			}
		}
	}
}

// Same invariant with subsampling active (the Keep coin flips are part of
// the RNG stream and must be replayed identically).
func TestInspectMatchesTrainWithSubsampling(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 3000; i++ {
		sb.WriteString("the ")
		if i%3 == 0 {
			sb.WriteString("fox ")
		}
		if i%7 == 0 {
			sb.WriteString("ran ")
		}
	}
	tr, tokens := buildWithSampling(t, sb.String(), 4, Params{Window: 3, Negatives: 5}, 1e-3)
	touched := bitset.New(tr.Vocab.Size())
	access := bitset.New(tr.Vocab.Size())
	var st Stats
	tr.TrainTokens(tokens, 0.05, xrand.New(5), touched, &st, nil)
	tr.InspectTokens(tokens, xrand.New(5), access, nil)
	for i := 0; i < tr.Vocab.Size(); i++ {
		if touched.Get(i) != access.Get(i) {
			t.Fatalf("node %d touched=%v access=%v", i, touched.Get(i), access.Get(i))
		}
	}
	if st.TokensKept >= st.TokensSeen {
		t.Error("expected subsampling to discard tokens in this corpus")
	}
}

func TestInspectDoesNotTouchModel(t *testing.T) {
	text := strings.Repeat("p q r s ", 50)
	tr, tokens := buildTiny(t, text, 8, Params{Window: 2, Negatives: 4})
	before := tr.Model.Clone()
	tr.InspectTokens(tokens, xrand.New(1), bitset.New(tr.Vocab.Size()), nil)
	for i := range before.Emb.Data {
		if tr.Model.Emb.Data[i] != before.Emb.Data[i] || tr.Model.Ctx.Data[i] != before.Ctx.Data[i] {
			t.Fatal("inspection modified the model")
		}
	}
}
