// Package sgns implements the Skip-Gram-with-Negative-Sampling operator —
// the "graph operator" of GraphWord2Vec (paper §2.1, §4.1). Given a
// worklist of corpus tokens it generates, on the fly, the positive edges
// (center word ↔ window context) and negative edges (center ↔ unigram^0.75
// samples) of the abstract word graph and applies the SGD update for each,
// mirroring word2vec.c:
//
//	for each context word c of center w:
//	    e ← 0
//	    for (target, label) in {(w, 1)} ∪ {(negᵢ, 0)}:
//	        f ← emb[c]·ctx[target]
//	        g ← (label − σ(f)) · α
//	        e ← e + g·ctx[target]
//	        ctx[target] += g·emb[c]
//	    emb[c] += e
//
// The package also provides the two shared-memory baselines of the paper's
// evaluation: a Hogwild multi-threaded trainer (the Word2Vec C reference,
// "W2V") and a job-batched variant modelling Gensim's scheduling ("GEM").
package sgns

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"graphword2vec/internal/bitset"
	"graphword2vec/internal/model"
	"graphword2vec/internal/vecmath"
	"graphword2vec/internal/vocab"
	"graphword2vec/internal/xrand"
)

// Params are the Skip-Gram model hyper-parameters (paper §5.1 defaults:
// window 5, 15 negatives, sentence length 10k, subsample 1e-4, dim 200,
// 16 epochs, α = 0.025).
type Params struct {
	// Window is the maximum one-sided context window; the effective
	// window per center word is drawn uniformly from [1, Window]
	// (word2vec.c's dynamic window).
	Window int
	// Negatives is the number of negative samples per positive pair.
	Negatives int
	// MaxSentenceLength caps pseudo-sentence length.
	MaxSentenceLength int
	// TrackLoss enables running SGNS loss accumulation (costs a log()
	// per edge; off for timing runs, on for convergence plots).
	TrackLoss bool
}

// DefaultParams returns the paper's hyper-parameters.
func DefaultParams() Params {
	return Params{Window: 5, Negatives: 15, MaxSentenceLength: 10000}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Window <= 0 {
		return errors.New("sgns: Window must be positive")
	}
	if p.Negatives < 0 {
		return errors.New("sgns: Negatives must be non-negative")
	}
	return nil
}

// Stats accumulates per-run training counters.
type Stats struct {
	// TokensSeen counts worklist tokens examined.
	TokensSeen int64
	// TokensKept counts tokens surviving subsampling.
	TokensKept int64
	// Pairs counts (positive) training pairs processed.
	Pairs int64
	// LossSum / LossEdges give the mean SGNS loss per edge when
	// Params.TrackLoss is set.
	LossSum   float64
	LossEdges int64
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.TokensSeen += other.TokensSeen
	s.TokensKept += other.TokensKept
	s.Pairs += other.Pairs
	s.LossSum += other.LossSum
	s.LossEdges += other.LossEdges
}

// MeanLoss returns the average per-edge loss, or 0 if not tracked.
func (s *Stats) MeanLoss() float64 {
	if s.LossEdges == 0 {
		return 0
	}
	return s.LossSum / float64(s.LossEdges)
}

// Trainer bundles the immutable training context shared by every worker:
// model, vocabulary, negative-sampling table and hyper-parameters.
type Trainer struct {
	Model  *model.Model
	Vocab  *vocab.Vocabulary
	Neg    *vocab.UnigramTable
	Params Params
}

// NewTrainer validates the configuration and returns a Trainer.
func NewTrainer(m *model.Model, v *vocab.Vocabulary, neg *vocab.UnigramTable, p Params) (*Trainer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.VocabSize() != v.Size() {
		return nil, errors.New("sgns: model/vocabulary size mismatch")
	}
	if p.MaxSentenceLength <= 0 {
		p.MaxSentenceLength = 10000
	}
	return &Trainer{Model: m, Vocab: v, Neg: neg, Params: p}, nil
}

// Scratch holds the per-worker reusable buffers of the SGNS hot path:
// the gradient-accumulation vector and the subsampled-sentence buffer.
// Threading one Scratch per worker through TrainTokens makes the
// steady-state training loop allocation-free (TestTrainTokensZeroAllocs
// pins 0 allocs/op). A Scratch is not safe for concurrent use; create
// one per goroutine with Trainer.NewScratch.
type Scratch struct {
	neu1e []float32
	sen   []int32
}

// NewScratch returns scratch buffers sized for this trainer's
// dimensionality and maximum sentence length.
func (t *Trainer) NewScratch() *Scratch {
	maxSent := t.Params.MaxSentenceLength
	if maxSent <= 0 {
		maxSent = 10000
	}
	return &Scratch{
		neu1e: make([]float32, t.Model.Dim),
		sen:   make([]int32, 0, maxSent),
	}
}

// TrainTokens applies the SGNS operator to one worklist chunk at a fixed
// learning rate alpha, updating the model in place. If touched is non-nil,
// every node whose labels were written is recorded in it (this feeds the
// RepModel-Opt sparse synchronisation). r must be owned by the caller.
// sc supplies the reusable hot-path buffers; nil allocates a fresh set
// (convenient for one-shot callers, allocation-free when reused).
func (t *Trainer) TrainTokens(tokens []int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, sc *Scratch) {
	if sc == nil {
		sc = t.NewScratch()
	}
	for start := 0; start < len(tokens); start += t.Params.MaxSentenceLength {
		end := start + t.Params.MaxSentenceLength
		if end > len(tokens) {
			end = len(tokens)
		}
		// Subsample the sentence up front, as word2vec.c does while
		// reading: discarded tokens vanish, shrinking effective
		// distances and widening effective context.
		sen := sc.sen[:0]
		for _, w := range tokens[start:end] {
			st.TokensSeen++
			if t.Vocab.Keep(w, r) {
				sen = append(sen, w)
				st.TokensKept++
			}
		}
		t.trainSentence(sen, alpha, r, touched, st, sc.neu1e)
		sc.sen = sen // retain any growth for the next sentence
	}
}

// trainSentence runs the operator over one subsampled sentence.
func (t *Trainer) trainSentence(sen []int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, neu1e []float32) {
	window := t.Params.Window
	for pos, center := range sen {
		// Dynamic window: uniform in [1, window].
		b := r.Intn(window)
		lo := pos - (window - b)
		if lo < 0 {
			lo = 0
		}
		hi := pos + (window - b) + 1
		if hi > len(sen) {
			hi = len(sen)
		}
		for cpos := lo; cpos < hi; cpos++ {
			if cpos == pos {
				continue
			}
			t.trainPair(sen[cpos], center, alpha, r, touched, st, neu1e)
		}
	}
}

// trainPair applies one positive edge (context, center) plus Negatives
// negative edges. context's embedding row and each target's training row
// are updated; this is the per-edge "operator" in graph terms.
func (t *Trainer) trainPair(context, center int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, neu1e []float32) {
	emb := t.Model.EmbRow(context)
	vecmath.Zero(neu1e)
	st.Pairs++

	for d := 0; d <= t.Params.Negatives; d++ {
		var target int32
		var label float32
		if d == 0 {
			target, label = center, 1
		} else {
			target = t.Neg.SampleExcluding(r, center)
			if target == center {
				continue // single-word vocabulary fallback
			}
			label = 0
		}
		ctx := t.Model.CtxRow(target)
		f := vecmath.Dot(emb, ctx)
		g := (label - vecmath.Sigmoid(f)) * alpha
		if t.Params.TrackLoss {
			st.LossSum += pairLoss(float64(f), label)
			st.LossEdges++
		}
		// Fused neu1e += g·ctx; ctx += g·emb — one pass over the row
		// pair, bit-identical to the two Axpys it replaces.
		vecmath.UpdatePair(emb, ctx, neu1e, g)
		if touched != nil {
			touched.Set(int(target))
		}
	}
	vecmath.Axpy(1, neu1e, emb)
	if touched != nil {
		touched.Set(int(context))
	}
}

// pairLoss returns the SGNS logistic loss for score f and label.
func pairLoss(f float64, label float32) float64 {
	s := vecmath.SigmoidExact(f)
	const eps = 1e-12
	if label == 1 {
		return -math.Log(s + eps)
	}
	return -math.Log(1 - s + eps)
}

// HogwildConfig configures the shared-memory multi-threaded trainer.
type HogwildConfig struct {
	// Threads is the number of racy workers (word2vec.c's num_threads).
	// Zero means GOMAXPROCS.
	Threads int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// Alpha is the initial learning rate; it decays linearly with word
	// progress to Alpha·1e-4, exactly as in word2vec.c.
	Alpha float32
	// Seed drives all sampling.
	Seed uint64
	// OnEpoch, if non-nil, is called after each epoch with the epoch
	// index (0-based) and accumulated stats — the evaluation hook for
	// the Figure 6 convergence curves.
	OnEpoch func(epoch int, st Stats)
}

// TrainHogwild runs the Word2Vec C-style shared-memory baseline: Threads
// goroutines process disjoint chunks of the corpus concurrently and update
// the model racily (Hogwild, paper §2.3). The data race on model weights is
// deliberate and benign for SGD (sparse updates); do not run this under the
// race detector expecting silence.
func (t *Trainer) TrainHogwild(tokens []int32, cfg HogwildConfig) Stats {
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	root := xrand.New(cfg.Seed)
	var total Stats
	totalWords := int64(len(tokens)) * int64(cfg.Epochs)
	var wordsDone int64

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var wg sync.WaitGroup
		statsCh := make(chan Stats, threads)
		for th := 0; th < threads; th++ {
			lo := len(tokens) * th / threads
			hi := len(tokens) * (th + 1) / threads
			r := root.Split()
			progress := wordsDone // snapshot; per-thread refinement below
			wg.Add(1)
			go func(chunk []int32, r *xrand.Rand, progressBase int64) {
				defer wg.Done()
				var st Stats
				sc := t.NewScratch() // reused across every piece
				// Decay alpha in sub-chunks so long epochs see the
				// word2vec.c linear schedule rather than a constant.
				const piece = 10000
				done := int64(0)
				for off := 0; off < len(chunk); off += piece {
					end := off + piece
					if end > len(chunk) {
						end = len(chunk)
					}
					frac := float64(progressBase+done*int64(threads)) / float64(totalWords+1)
					alpha := cfg.Alpha * float32(1-frac)
					if alpha < cfg.Alpha*1e-4 {
						alpha = cfg.Alpha * 1e-4
					}
					t.TrainTokens(chunk[off:end], alpha, r, nil, &st, sc)
					done += int64(end - off)
				}
				statsCh <- st
			}(tokens[lo:hi], r, progress)
		}
		wg.Wait()
		close(statsCh)
		var epochStats Stats
		for st := range statsCh {
			epochStats.Add(st)
		}
		total.Add(epochStats)
		wordsDone += int64(len(tokens))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, total)
		}
	}
	return total
}

// BatchedConfig configures the Gensim-style baseline.
type BatchedConfig struct {
	// JobWords is the number of tokens per scheduling job (Gensim's
	// default batch_words is 10000).
	JobWords int
	// Threads, Epochs, Alpha, Seed, OnEpoch as in HogwildConfig.
	Threads int
	Epochs  int
	Alpha   float32
	Seed    uint64
	OnEpoch func(epoch int, st Stats)
	// SharedNegWindow > 0 selects the batched-GEMM tier (`-sgns
	// batched`): groups of that many pairs share one negative-sample
	// set and score through vecmath.Gemm. Lossy relative to the
	// pairwise schedule but deterministic — same seed, same model,
	// independent of Threads (see batched_gemm.go).
	SharedNegWindow int
}

// TrainBatched is the Gensim stand-in (see DESIGN.md substitutions): the
// same SGNS math, but tokens are dispatched to workers in fixed-size jobs
// from a shared queue, each job trained at a constant per-job alpha that
// decays between jobs. This reproduces Gensim's scheduling behaviour —
// slightly different convergence path, comparable final accuracy.
func (t *Trainer) TrainBatched(tokens []int32, cfg BatchedConfig) Stats {
	if cfg.SharedNegWindow > 0 {
		return t.trainBatchedGemm(tokens, cfg)
	}
	if cfg.JobWords <= 0 {
		cfg.JobWords = 10000
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	root := xrand.New(cfg.Seed)
	var total Stats
	totalWords := int64(len(tokens)) * int64(cfg.Epochs)

	type job struct {
		lo, hi int
		alpha  float32
	}
	var wordsDone int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		jobs := make(chan job, threads*2)
		statsCh := make(chan Stats, threads)
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			r := root.Split()
			wg.Add(1)
			go func(r *xrand.Rand) {
				defer wg.Done()
				var st Stats
				sc := t.NewScratch() // reused across every job
				for j := range jobs {
					t.TrainTokens(tokens[j.lo:j.hi], j.alpha, r, nil, &st, sc)
				}
				statsCh <- st
			}(r)
		}
		for lo := 0; lo < len(tokens); lo += cfg.JobWords {
			hi := lo + cfg.JobWords
			if hi > len(tokens) {
				hi = len(tokens)
			}
			frac := float64(wordsDone+int64(lo)) / float64(totalWords+1)
			alpha := cfg.Alpha * float32(1-frac)
			if alpha < cfg.Alpha*1e-4 {
				alpha = cfg.Alpha * 1e-4
			}
			jobs <- job{lo: lo, hi: hi, alpha: alpha}
		}
		close(jobs)
		wg.Wait()
		close(statsCh)
		var epochStats Stats
		for st := range statsCh {
			epochStats.Add(st)
		}
		total.Add(epochStats)
		wordsDone += int64(len(tokens))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, total)
		}
	}
	return total
}
