//go:build !race

package sgns

// raceEnabled reports whether the race detector is compiled in. See
// race_on_test.go.
const raceEnabled = false
