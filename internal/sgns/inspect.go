package sgns

import (
	"graphword2vec/internal/bitset"
	"graphword2vec/internal/xrand"
)

// InspectTokens is the PullModel inspection phase (paper §4.4): it replays
// exactly the random choices TrainTokens would make on the same worklist
// chunk with the same generator seed — subsampling coin flips, dynamic
// window draws, negative samples — and records every node the compute
// phase will access, without touching the model.
//
// The invariant that makes PullModel sound is
//
//	InspectTokens(tokens, seed)  ⊇  touched(TrainTokens(tokens, seed))
//
// and because every SGNS read is also a write, the sets are in fact
// equal. TestInspectMatchesTrain pins this; any change to TrainTokens'
// randomness consumption must be mirrored here.
//
// sc supplies the reusable sentence buffer exactly as in TrainTokens;
// nil allocates a fresh one.
func (t *Trainer) InspectTokens(tokens []int32, r *xrand.Rand, access *bitset.Bitset, sc *Scratch) {
	if sc == nil {
		sc = t.NewScratch()
	}
	maxSent := t.Params.MaxSentenceLength
	for start := 0; start < len(tokens); start += maxSent {
		end := start + maxSent
		if end > len(tokens) {
			end = len(tokens)
		}
		sen := sc.sen[:0]
		for _, w := range tokens[start:end] {
			if t.Vocab.Keep(w, r) {
				sen = append(sen, w)
			}
		}
		t.inspectSentence(sen, r, access)
		sc.sen = sen
	}
}

// inspectSentence mirrors trainSentence's control flow and RNG use.
func (t *Trainer) inspectSentence(sen []int32, r *xrand.Rand, access *bitset.Bitset) {
	window := t.Params.Window
	for pos, center := range sen {
		b := r.Intn(window)
		lo := pos - (window - b)
		if lo < 0 {
			lo = 0
		}
		hi := pos + (window - b) + 1
		if hi > len(sen) {
			hi = len(sen)
		}
		for cpos := lo; cpos < hi; cpos++ {
			if cpos == pos {
				continue
			}
			// Mirrors trainPair: context's embedding row and each
			// target's training row are accessed.
			access.Set(int(sen[cpos]))
			access.Set(int(center))
			for d := 1; d <= t.Params.Negatives; d++ {
				target := t.Neg.SampleExcluding(r, center)
				if target == center {
					continue
				}
				access.Set(int(target))
			}
		}
	}
}
