package sgns

import (
	"graphword2vec/internal/bitset"
	"graphword2vec/internal/vecmath"
	"graphword2vec/internal/xrand"
)

// Gated training: the compute half of the compute/sync overlap
// (DESIGN.md §12). TrainTokensGated is TrainTokens with one extra rule —
// before touching any model row it asks the gate whether that node is
// final yet, and the gate BLOCKS until it is. Blocking is the only
// degree of freedom: the token order, the subsampling decisions, the
// dynamic windows and every negative draw are byte-for-byte the same
// RNG stream as the ungated path, so an overlapped round trains the
// exact same float sequence as a serialized one, just possibly later.
// Reordering work around a busy node would change which draw lands on
// which pair and break the hash-pinned bit-identity contract; waiting
// cannot.

// NodeGate delays access to a model row until the in-flight
// synchronisation round can no longer read or write it. WaitNode must
// return immediately once its round is over (the done event), and a nil
// gate is not allowed — callers without a sync in flight use
// TrainTokens.
type NodeGate interface {
	// WaitNode blocks until node n's model rows are final for this
	// round's compute.
	WaitNode(n int32)
}

// TrainTokensGated is TrainTokens under a NodeGate: identical RNG
// draws, identical update order, identical floats — only the timing of
// each row access may differ. See TrainTokens for the parameter
// contract.
func (t *Trainer) TrainTokensGated(tokens []int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, sc *Scratch, gate NodeGate) {
	if sc == nil {
		sc = t.NewScratch()
	}
	for start := 0; start < len(tokens); start += t.Params.MaxSentenceLength {
		end := start + t.Params.MaxSentenceLength
		if end > len(tokens) {
			end = len(tokens)
		}
		// Subsampling consumes RNG exactly as TrainTokens does: the
		// Keep draws precede any gating, so a blocked row cannot shift
		// the stream.
		sen := sc.sen[:0]
		for _, w := range tokens[start:end] {
			st.TokensSeen++
			if t.Vocab.Keep(w, r) {
				sen = append(sen, w)
				st.TokensKept++
			}
		}
		t.trainSentenceGated(sen, alpha, r, touched, st, sc.neu1e, gate)
		sc.sen = sen
	}
}

// trainSentenceGated mirrors trainSentence; the dynamic-window draw
// happens before any gate wait.
func (t *Trainer) trainSentenceGated(sen []int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, neu1e []float32, gate NodeGate) {
	window := t.Params.Window
	for pos, center := range sen {
		b := r.Intn(window)
		lo := pos - (window - b)
		if lo < 0 {
			lo = 0
		}
		hi := pos + (window - b) + 1
		if hi > len(sen) {
			hi = len(sen)
		}
		for cpos := lo; cpos < hi; cpos++ {
			if cpos == pos {
				continue
			}
			t.trainPairGated(sen[cpos], center, alpha, r, touched, st, neu1e, gate)
		}
	}
}

// trainPairGated mirrors trainPair with a gate wait before each row
// access: the context's embedding row once per pair, and each target's
// training row as it comes up. Negative draws happen before their
// target's wait, in the same order as the ungated path. Finality is
// monotone within a round, so a row that was waited for stays safe for
// the rest of the pair (the trailing Axpy into emb needs no second
// wait).
func (t *Trainer) trainPairGated(context, center int32, alpha float32, r *xrand.Rand, touched *bitset.Bitset, st *Stats, neu1e []float32, gate NodeGate) {
	gate.WaitNode(context)
	emb := t.Model.EmbRow(context)
	vecmath.Zero(neu1e)
	st.Pairs++

	for d := 0; d <= t.Params.Negatives; d++ {
		var target int32
		var label float32
		if d == 0 {
			target, label = center, 1
		} else {
			target = t.Neg.SampleExcluding(r, center)
			if target == center {
				continue // single-word vocabulary fallback
			}
			label = 0
		}
		gate.WaitNode(target)
		ctx := t.Model.CtxRow(target)
		f := vecmath.Dot(emb, ctx)
		g := (label - vecmath.Sigmoid(f)) * alpha
		if t.Params.TrackLoss {
			st.LossSum += pairLoss(float64(f), label)
			st.LossEdges++
		}
		vecmath.UpdatePair(emb, ctx, neu1e, g)
		if touched != nil {
			touched.Set(int(target))
		}
	}
	vecmath.Axpy(1, neu1e, emb)
	if touched != nil {
		touched.Set(int(context))
	}
}
