//go:build race

package sgns

// raceEnabled reports whether the race detector is compiled in. Hogwild
// training is deliberately lock-free (word2vec's design: concurrent
// unsynchronized model updates are benign for SGD convergence), so tests
// that run multiple compute threads skip under -race.
const raceEnabled = true
