package sgns

import (
	"strings"
	"testing"

	"graphword2vec/internal/vecmath"
	"graphword2vec/internal/xrand"
)

// gemmTierCfg returns a BatchedConfig selecting the GEMM tier.
func gemmTierCfg(threads int) BatchedConfig {
	return BatchedConfig{
		JobWords:        64,
		Threads:         threads,
		Epochs:          2,
		Alpha:           0.05,
		Seed:            11,
		SharedNegWindow: 8,
	}
}

func TestTrainBatchedGemmRuns(t *testing.T) {
	text := strings.Repeat("a b c d ", 200)
	p := Params{Window: 2, Negatives: 3}
	tr, tokens := buildTiny(t, text, 8, p)
	called := 0
	cfg := gemmTierCfg(2)
	cfg.OnEpoch = func(int, Stats) { called++ }
	st := tr.TrainBatched(tokens, cfg)
	if called != 2 {
		t.Errorf("OnEpoch called %d times, want 2", called)
	}
	if st.TokensSeen != int64(len(tokens)*2) {
		t.Errorf("TokensSeen = %d, want %d", st.TokensSeen, len(tokens)*2)
	}
	if st.Pairs == 0 {
		t.Error("no pairs trained")
	}
}

// TestTrainBatchedGemmDeterministicAcrossThreads is the tier's core
// contract: the Threads knob must not be able to perturb the model.
// Scheduling is single-writer in job-index order and RNG is derived from
// (Seed, epoch, job), so any thread count yields byte-identical floats.
func TestTrainBatchedGemmDeterministicAcrossThreads(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 80)
	p := Params{Window: 3, Negatives: 4}
	var ref []float32
	var refStats Stats
	for i, threads := range []int{1, 2, 7} {
		tr, tokens := buildTiny(t, text, 8, p)
		st := tr.TrainBatched(tokens, gemmTierCfg(threads))
		if i == 0 {
			ref = append(ref, tr.Model.Emb.Data...)
			ref = append(ref, tr.Model.Ctx.Data...)
			refStats = st
			continue
		}
		if st != refStats {
			t.Fatalf("Threads=%d stats diverged: %+v vs %+v", threads, st, refStats)
		}
		got := append(append([]float32{}, tr.Model.Emb.Data...), tr.Model.Ctx.Data...)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("Threads=%d produced different model at %d", threads, j)
			}
		}
	}
}

// TestTrainBatchedGemmKernelIndependent pins that the tier is
// bit-identical with SIMD on and off — the Gemm kernels share the
// generic path's accumulation order, so the lossy schedule is the only
// deviation from pairwise, not the kernels.
func TestTrainBatchedGemmKernelIndependent(t *testing.T) {
	if !vecmath.SIMDAvailable() {
		t.Skip("no SIMD kernels on this arch")
	}
	text := strings.Repeat("p q r s t u ", 100)
	p := Params{Window: 2, Negatives: 5}
	wasOn := vecmath.SIMDEnabled()
	defer vecmath.SetSIMD(wasOn)

	vecmath.SetSIMD(true)
	tr1, tokens := buildTiny(t, text, 9, p) // odd dim exercises tails
	tr1.TrainBatched(tokens, gemmTierCfg(1))

	vecmath.SetSIMD(false)
	tr2, _ := buildTiny(t, text, 9, p)
	tr2.TrainBatched(tokens, gemmTierCfg(1))

	for i := range tr1.Model.Emb.Data {
		if tr1.Model.Emb.Data[i] != tr2.Model.Emb.Data[i] {
			t.Fatalf("SIMD vs generic diverged at emb[%d]", i)
		}
	}
	for i := range tr1.Model.Ctx.Data {
		if tr1.Model.Ctx.Data[i] != tr2.Model.Ctx.Data[i] {
			t.Fatalf("SIMD vs generic diverged at ctx[%d]", i)
		}
	}
}

// TestTrainBatchedGemmLearnsCooccurrence sanity-checks that the lossy
// schedule still learns: words that co-occur should score higher than
// words that never do.
func TestTrainBatchedGemmLearnsCooccurrence(t *testing.T) {
	text := strings.Repeat("aa bb aa bb ", 150) + strings.Repeat("xx yy xx yy ", 150)
	p := Params{Window: 1, Negatives: 5}
	tr, tokens := buildTiny(t, text, 16, p)
	cfg := gemmTierCfg(1)
	cfg.Epochs = 8
	tr.TrainBatched(tokens, cfg)
	score := func(a, b string) float32 {
		return vecmath.Dot(tr.Model.EmbRow(tr.Vocab.ID(a)), tr.Model.CtxRow(tr.Vocab.ID(b)))
	}
	if score("aa", "bb") <= score("aa", "yy") {
		t.Errorf("co-occurring pair scored %v, non-occurring %v", score("aa", "bb"), score("aa", "yy"))
	}
}

// TestFlushGroupZeroAllocs pins the tier's steady-state hot path: with a
// reused BatchScratch, a full group flush allocates nothing.
func TestFlushGroupZeroAllocs(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 50)
	tr, _ := buildTiny(t, text, 32, Params{Window: 5, Negatives: 5})
	const p = 16
	sc := tr.NewBatchScratch(p)
	for i := 0; i < p; i++ {
		sc.ctxs = append(sc.ctxs, int32(i%tr.Vocab.Size()))
		sc.cents = append(sc.cents, int32((i+1)%tr.Vocab.Size()))
	}
	r := xrand.New(3)
	var st Stats
	allocs := testing.AllocsPerRun(10, func() {
		tr.flushGroup(0.025, r, &st, sc)
	})
	if allocs != 0 {
		t.Errorf("flushGroup with scratch: %v allocs/op, want 0", allocs)
	}
}

// benchCorpus builds a corpus over vocabSize distinct words so the
// model is realistically larger than cache — the batched tier's win is
// touching each shared negative's row once per GROUP instead of once
// per PAIR, which only shows once those rows are random pulls from a
// multi-megabyte model rather than L1 residents.
func benchCorpus(vocabSize, tokens int) string {
	var sb strings.Builder
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < tokens; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		sb.WriteString("w")
		sb.WriteString(itoa(int(state % uint64(vocabSize))))
		sb.WriteByte(' ')
	}
	return sb.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkTrainBatchedGemm compares the batched-GEMM tier against the
// pairwise schedule on the same corpus, per kernel set. Vocab 20000 at
// dim 128 puts the two model matrices at ~20 MB, so negative-row
// traffic is cache-missing as in real training; the tier amortises it
// P ways.
func BenchmarkTrainBatchedGemm(b *testing.B) {
	text := benchCorpus(20000, 60000)
	run := func(b *testing.B, sharedNegWindow int) {
		tr, tokens := buildTiny(b, text, 128, Params{Window: 5, Negatives: 15})
		cfg := BatchedConfig{
			JobWords:        10000,
			Threads:         1,
			Epochs:          1,
			Alpha:           0.025,
			Seed:            1,
			SharedNegWindow: sharedNegWindow,
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(tokens)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.TrainBatched(tokens, cfg)
		}
	}
	wasOn := vecmath.SIMDEnabled()
	defer vecmath.SetSIMD(wasOn)
	if vecmath.SIMDAvailable() {
		vecmath.SetSIMD(true)
		b.Run(vecmath.KernelName()+"/pairwise", func(b *testing.B) { run(b, 0) })
		b.Run(vecmath.KernelName()+"/gemm16", func(b *testing.B) { run(b, 16) })
		b.Run(vecmath.KernelName()+"/gemm64", func(b *testing.B) { run(b, 64) })
	}
	vecmath.SetSIMD(false)
	b.Run("generic/pairwise", func(b *testing.B) { run(b, 0) })
	b.Run("generic/gemm16", func(b *testing.B) { run(b, 16) })
}
