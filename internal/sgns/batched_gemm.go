package sgns

import (
	"graphword2vec/internal/vecmath"
	"graphword2vec/internal/xrand"
)

// Batched-GEMM SGNS tier (`-sgns batched`, DESIGN.md §12). A window of
// P consecutive training pairs shares ONE set of K negative samples, and
// the P×K negative scores become a single small GEMM over packed row
// panels instead of P·K row dots. Like `-wire fp16` this is explicitly
// lossy-but-deterministic: it is a different (coarser-grained) SGD
// schedule than the pairwise path — scores read the panel values packed
// at group start, negatives are shared, duplicate rows inside a group
// see group-start values — but every run with the same seed produces the
// same model, regardless of the Threads setting, because scheduling is
// fixed by construction:
//
//   - jobs are processed in index order by a single model-writer
//     goroutine (the GEMM kernels, not thread scaling, are the speedup —
//     the right trade on the single-CPU bench host, see ROADMAP);
//   - each job's RNG is derived from (Seed, epoch, job index), never
//     from worker identity;
//   - group updates are applied in a fixed order (embeddings in pair
//     order, then positives in pair order, then shared negatives in
//     draw order).
//
// Per group the panels combine as:
//
//	S  (P×K)  = E (P×d) · Nᵀ (d×K)   negative scores (d-length row dots)
//	U  (P×d) += G (P×K) · N  (K×d)   per-pair gradient accumulators
//	D  (K×d) += Gᵀ (K×P) · E (P×d)   shared-negative row updates
//
// where E packs the pair contexts' embedding rows, N the shared
// negatives' training rows and G the per-cell gradients (zeroed where a
// negative collides with that pair's center, word2vec.c's skip rule).
// U and D run through vecmath.Gemm (their inner dimension is d, the
// shape the kernel's 4-wide unroll wants); S's inner dimension would be
// K — too short to vectorize as row updates — so it is computed in the
// transposed dot form over the same panels instead.

// BatchScratch holds the reusable panels of the batched-GEMM tier; one
// per trainer invocation (the tier is single-writer). Sized for group
// width P and the trainer's Negatives/Dim, it makes the steady-state
// group flush allocation-free.
type BatchScratch struct {
	sen   []int32
	ctxs  []int32 // pair context words (embedding side), ≤ P
	cents []int32 // pair centers (positive targets), ≤ P
	negs  []int32 // shared negative draws, K

	e  []float32 // E: P×d packed context embedding rows
	u  []float32 // U: P×d per-pair gradient accumulators
	n  []float32 // N: K×d packed negative training rows
	s  []float32 // S/G: P×K scores, transformed into gradients in place
	gt []float32 // Gᵀ: K×P transpose of G

	fpos []float32 // positive scores, ≤ P
	gpos []float32 // positive gradients, ≤ P
}

// NewBatchScratch returns panels for group width p (SharedNegWindow).
func (t *Trainer) NewBatchScratch(p int) *BatchScratch {
	maxSent := t.Params.MaxSentenceLength
	if maxSent <= 0 {
		maxSent = 10000
	}
	d := t.Model.Dim
	k := t.Params.Negatives
	return &BatchScratch{
		sen:   make([]int32, 0, maxSent),
		ctxs:  make([]int32, 0, p),
		cents: make([]int32, 0, p),
		negs:  make([]int32, k),
		e:     make([]float32, p*d),
		u:     make([]float32, p*d),
		n:     make([]float32, k*d),
		s:     make([]float32, p*k),
		gt:    make([]float32, k*p),
		fpos:  make([]float32, p),
		gpos:  make([]float32, p),
	}
}

// jobSeed derives the per-(epoch, job) RNG seed — a splitmix64-style
// finalizer over the root seed, so neither worker identity nor thread
// count can reach the stream.
func jobSeed(seed uint64, epoch, job int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(epoch+1) + 0xbf58476d1ce4e5b9*uint64(job+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// trainBatchedGemm is the SharedNegWindow > 0 arm of TrainBatched.
func (t *Trainer) trainBatchedGemm(tokens []int32, cfg BatchedConfig) Stats {
	if cfg.JobWords <= 0 {
		cfg.JobWords = 10000
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	var total Stats
	totalWords := int64(len(tokens)) * int64(cfg.Epochs)
	sc := t.NewBatchScratch(cfg.SharedNegWindow)
	var wordsDone int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for jobIdx, lo := 0, 0; lo < len(tokens); jobIdx, lo = jobIdx+1, lo+cfg.JobWords {
			hi := lo + cfg.JobWords
			if hi > len(tokens) {
				hi = len(tokens)
			}
			frac := float64(wordsDone+int64(lo)) / float64(totalWords+1)
			alpha := cfg.Alpha * float32(1-frac)
			if alpha < cfg.Alpha*1e-4 {
				alpha = cfg.Alpha * 1e-4
			}
			r := xrand.New(jobSeed(cfg.Seed, epoch, jobIdx))
			t.trainJobGemm(tokens[lo:hi], alpha, cfg.SharedNegWindow, r, &total, sc)
		}
		wordsDone += int64(len(tokens))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, total)
		}
	}
	return total
}

// trainJobGemm trains one job: subsample per sentence as TrainTokens
// does, walk centers with the dynamic window, and flush every P
// collected pairs as one shared-negative GEMM group. Groups never span
// sentences.
func (t *Trainer) trainJobGemm(tokens []int32, alpha float32, p int, r *xrand.Rand, st *Stats, sc *BatchScratch) {
	maxSent := t.Params.MaxSentenceLength
	window := t.Params.Window
	for start := 0; start < len(tokens); start += maxSent {
		end := start + maxSent
		if end > len(tokens) {
			end = len(tokens)
		}
		sen := sc.sen[:0]
		for _, w := range tokens[start:end] {
			st.TokensSeen++
			if t.Vocab.Keep(w, r) {
				sen = append(sen, w)
				st.TokensKept++
			}
		}
		sc.sen = sen
		sc.ctxs, sc.cents = sc.ctxs[:0], sc.cents[:0]
		for pos, center := range sen {
			b := r.Intn(window)
			lo := pos - (window - b)
			if lo < 0 {
				lo = 0
			}
			hi := pos + (window - b) + 1
			if hi > len(sen) {
				hi = len(sen)
			}
			for cpos := lo; cpos < hi; cpos++ {
				if cpos == pos {
					continue
				}
				sc.ctxs = append(sc.ctxs, sen[cpos])
				sc.cents = append(sc.cents, center)
				if len(sc.ctxs) == p {
					t.flushGroup(alpha, r, st, sc)
					sc.ctxs, sc.cents = sc.ctxs[:0], sc.cents[:0]
				}
			}
		}
		if len(sc.ctxs) > 0 {
			t.flushGroup(alpha, r, st, sc)
			sc.ctxs, sc.cents = sc.ctxs[:0], sc.cents[:0]
		}
	}
}

// flushGroup trains the collected pairs against one shared negative set.
func (t *Trainer) flushGroup(alpha float32, r *xrand.Rand, st *Stats, sc *BatchScratch) {
	m := t.Model
	d := m.Dim
	k := t.Params.Negatives
	p := len(sc.ctxs)
	st.Pairs += int64(p)

	// One shared negative draw per slot — K draws for the whole group
	// instead of P·K. Collisions with a pair's center are masked per
	// cell below (the word2vec.c skip rule), not redrawn, so the draw
	// count is shape-independent.
	for j := 0; j < k; j++ {
		sc.negs[j] = t.Neg.Sample(r)
	}

	// Pack the panels. E and N freeze the group's input values: every
	// score in this group reads group-start rows (the documented lossy
	// difference from the pairwise path, which would see mid-group
	// updates). Center rows need no panel — nothing writes the model
	// until the apply phase, and the apply order below is arranged so
	// every center-row read happens before any center-row write.
	e := sc.e[:p*d]
	for i := 0; i < p; i++ {
		copy(e[i*d:(i+1)*d], m.EmbRow(sc.ctxs[i]))
	}
	n := sc.n[:k*d]
	for j := 0; j < k; j++ {
		copy(n[j*d:(j+1)*d], m.CtxRow(sc.negs[j]))
	}

	// Scores: S = E·Nᵀ in dot form (inner dimension d), positives as
	// row dots against the still-pristine center rows.
	s := sc.s[:p*k]
	for i := 0; i < p; i++ {
		ei := e[i*d : (i+1)*d]
		sc.fpos[i] = vecmath.Dot(ei, m.CtxRow(sc.cents[i]))
		for j := 0; j < k; j++ {
			s[i*k+j] = vecmath.Dot(ei, n[j*d:(j+1)*d])
		}
	}

	// Gradients, in place over the score panels.
	for i := 0; i < p; i++ {
		f := sc.fpos[i]
		sc.gpos[i] = (1 - vecmath.Sigmoid(f)) * alpha
		if t.Params.TrackLoss {
			st.LossSum += pairLoss(float64(f), 1)
			st.LossEdges++
		}
		for j := 0; j < k; j++ {
			if sc.negs[j] == sc.cents[i] {
				s[i*k+j] = 0 // skip rule: no self-negative update
				continue
			}
			f := s[i*k+j]
			s[i*k+j] = (0 - vecmath.Sigmoid(f)) * alpha
			if t.Params.TrackLoss {
				st.LossSum += pairLoss(float64(f), 0)
				st.LossEdges++
			}
		}
	}
	gt := sc.gt[:k*p]
	for i := 0; i < p; i++ {
		for j := 0; j < k; j++ {
			gt[j*p+i] = s[i*k+j]
		}
	}

	// U = G·N: each pair's accumulated negative-gradient row. N's last
	// read is here, which frees its backing for D below.
	u := sc.u[:p*d]
	vecmath.Zero(u)
	vecmath.Gemm(u, s, n, p, k, d)

	// Apply, fixed order: embeddings first in pair order (center rows
	// are still pristine, so the positive term reads them live), then
	// positive targets in pair order (their gradient uses the frozen E
	// panel), then shared negatives in draw order (D = Gᵀ·E computed
	// into n's now-free backing). Duplicates within a phase fold
	// sequentially — the defined, deterministic semantics.
	for i := 0; i < p; i++ {
		emb := m.EmbRow(sc.ctxs[i])
		vecmath.Axpy(1, u[i*d:(i+1)*d], emb)
		vecmath.Axpy(sc.gpos[i], m.CtxRow(sc.cents[i]), emb)
	}
	for i := 0; i < p; i++ {
		vecmath.Axpy(sc.gpos[i], e[i*d:(i+1)*d], m.CtxRow(sc.cents[i]))
	}
	vecmath.Zero(n)
	vecmath.Gemm(n, gt, e, k, p, d)
	for j := 0; j < k; j++ {
		vecmath.Axpy(1, n[j*d:(j+1)*d], m.CtxRow(sc.negs[j]))
	}
}
