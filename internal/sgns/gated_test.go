package sgns

import (
	"strings"
	"sync/atomic"
	"testing"

	"graphword2vec/internal/bitset"
	"graphword2vec/internal/xrand"
)

// openGate never blocks — the degenerate gate of an already-finished
// round.
type openGate struct{ waits int64 }

func (g *openGate) WaitNode(int32) { g.waits++ }

// releaseGate blocks every wait until another goroutine flips it open,
// simulating a sync round finishing mid-compute.
type releaseGate struct {
	open atomic.Bool
	ch   chan struct{}
}

func newReleaseGate() *releaseGate { return &releaseGate{ch: make(chan struct{})} }

func (g *releaseGate) WaitNode(int32) {
	if g.open.Load() {
		return
	}
	<-g.ch
}

func (g *releaseGate) release() {
	g.open.Store(true)
	close(g.ch)
}

// TestTrainTokensGatedBitIdentical is the overlap compute contract: a
// gate may only delay row access, never change the result. Both an
// always-open gate and one that blocks until released mid-run must
// produce the exact floats of the ungated path.
func TestTrainTokensGatedBitIdentical(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 60)
	p := Params{Window: 3, Negatives: 4}

	trRef, tokens := buildTiny(t, text, 8, p)
	touchedRef := bitset.New(trRef.Vocab.Size())
	var stRef Stats
	trRef.TrainTokens(tokens, 0.05, xrand.New(7), touchedRef, &stRef, nil)

	t.Run("open", func(t *testing.T) {
		tr, _ := buildTiny(t, text, 8, p)
		touched := bitset.New(tr.Vocab.Size())
		var st Stats
		g := &openGate{}
		tr.TrainTokensGated(tokens, 0.05, xrand.New(7), touched, &st, nil, g)
		if g.waits == 0 {
			t.Fatal("gate never consulted")
		}
		compareToRef(t, tr, trRef, st, stRef, touched, touchedRef)
	})

	t.Run("released-midway", func(t *testing.T) {
		tr, _ := buildTiny(t, text, 8, p)
		touched := bitset.New(tr.Vocab.Size())
		var st Stats
		g := newReleaseGate()
		done := make(chan struct{})
		go func() {
			defer close(done)
			tr.TrainTokensGated(tokens, 0.05, xrand.New(7), touched, &st, nil, g)
		}()
		g.release()
		<-done
		compareToRef(t, tr, trRef, st, stRef, touched, touchedRef)
	})
}

func compareToRef(t *testing.T, got, ref *Trainer, st, stRef Stats, touched, touchedRef *bitset.Bitset) {
	t.Helper()
	if st != stRef {
		t.Fatalf("stats diverged: %+v vs %+v", st, stRef)
	}
	for i := range got.Model.Emb.Data {
		if got.Model.Emb.Data[i] != ref.Model.Emb.Data[i] {
			t.Fatalf("emb diverged at %d", i)
		}
	}
	for i := range got.Model.Ctx.Data {
		if got.Model.Ctx.Data[i] != ref.Model.Ctx.Data[i] {
			t.Fatalf("ctx diverged at %d", i)
		}
	}
	for i := 0; i < touched.Len(); i++ {
		if touched.Get(i) != touchedRef.Get(i) {
			t.Fatalf("touched diverged at node %d", i)
		}
	}
}

// TestTrainTokensGatedZeroAllocs pins the gated hot path: with a reused
// Scratch and a trivial gate, gating adds no allocations over
// TrainTokens.
func TestTrainTokensGatedZeroAllocs(t *testing.T) {
	text := strings.Repeat("a b c d e f g h ", 100)
	tr, tokens := buildTiny(t, text, 32, Params{Window: 5, Negatives: 5})
	sc := tr.NewScratch()
	touched := bitset.New(tr.Vocab.Size())
	r := xrand.New(1)
	var st Stats
	g := &openGate{}
	allocs := testing.AllocsPerRun(10, func() {
		tr.TrainTokensGated(tokens, 0.025, r, touched, &st, sc, g)
	})
	if allocs != 0 {
		t.Errorf("TrainTokensGated with scratch: %v allocs/op, want 0", allocs)
	}
}
