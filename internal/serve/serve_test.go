package serve

// Shared test fixtures: a small deterministic snapshot plus helpers to
// drive the server through the full HTTP pipeline (httptest, no socket).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"graphword2vec/internal/model"
	"graphword2vec/internal/vocab"
)

// testVocab builds n words "w000".."w(n-1)" with strictly descending
// counts, so Build's (count desc, text) order equals insertion order and
// word ids are predictable.
func testVocab(t testing.TB, n int) *vocab.Vocabulary {
	t.Helper()
	b := vocab.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddN(fmt.Sprintf("w%03d", i), int64(2*n-i))
	}
	voc, err := b.Build(vocab.Options{MinCount: 1})
	if err != nil {
		t.Fatalf("build vocab: %v", err)
	}
	return voc
}

// testSnapshot builds an in-memory snapshot over a random model.
func testSnapshot(t testing.TB, n, dim int, ann bool) *Snapshot {
	t.Helper()
	voc := testVocab(t, n)
	m := model.New(n, dim)
	m.InitRandom(7)
	return NewSnapshot("test-snap", m, voc, StoreConfig{BuildANN: ann})
}

// testServer wires a snapshot into a ready Server; Close is registered.
func testServer(t testing.TB, snap *Snapshot, cfg Config) *Server {
	t.Helper()
	srv := New(NewStore(snap, StoreConfig{}), cfg)
	t.Cleanup(srv.Close)
	return srv
}

// do sends one request through ServeHTTP and returns the recorder.
func do(t testing.TB, srv *Server, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// decodeAs unmarshals a recorder body into out.
func decodeAs(t testing.TB, w *httptest.ResponseRecorder, out interface{}) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("unmarshal response %q: %v", w.Body.String(), err)
	}
}

// wantError asserts an error-envelope response with the given status
// and code.
func wantError(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %q)", w.Code, status, w.Body.String())
	}
	var e Error
	decodeAs(t, w, &e)
	if e.Code != code {
		t.Fatalf("code = %q, want %q (body %q)", e.Code, code, w.Body.String())
	}
	if e.Message == "" {
		t.Fatalf("error %q has empty message", code)
	}
}
