package serve

// The /v1 wire types. The request/response JSON contract, the error
// envelope and the version-bump policy are specified in API.md; these
// structs are that document's source of truth on the Go side. Field
// additions are backwards-compatible (clients must ignore unknown
// response fields, the server ignores unknown request fields); any
// rename, removal or semantic change bumps the path version.

// Error is the uniform error envelope: every non-2xx response body is
// exactly one of these, and failed items inside batch responses embed
// the same two fields.
type Error struct {
	// Code is a stable machine-readable identifier (API.md §2).
	Code string `json:"code"`
	// Message is human-readable detail; clients must not parse it.
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeBadRequest       = "bad_request" // malformed JSON, invalid parameters
	CodeNotFound         = "not_found"   // unknown endpoint or out-of-vocabulary word
	CodeMethodNotAllowed = "method_not_allowed"
	CodeBatchTooLarge    = "batch_too_large" // batch exceeds the server's limit
	CodeUnavailable      = "unavailable"     // no model snapshot loaded
	CodeInternal         = "internal"
)

// Hit is one scored vocabulary word.
type Hit struct {
	Word  string  `json:"word"`
	Score float32 `json:"score"`
}

// NeighborsRequest asks for the top-k nearest neighbours of a word.
type NeighborsRequest struct {
	// Word is the query word (required).
	Word string `json:"word"`
	// K is the neighbour count: 0 selects the server default (10),
	// values beyond vocab−1 are clamped.
	K int `json:"k,omitempty"`
	// Exact forces the exact scan even when the ANN index is loaded.
	Exact bool `json:"exact,omitempty"`
}

// NeighborsResult is one answered neighbour query. In batch responses a
// failed item carries the error envelope fields instead of Neighbors.
type NeighborsResult struct {
	Word      string `json:"word,omitempty"`
	Neighbors []Hit  `json:"neighbors,omitempty"`
	*Error
}

// NeighborsResponse answers POST /v1/neighbors.
type NeighborsResponse struct {
	// Snapshot is the model snapshot id that answered the query.
	Snapshot string `json:"snapshot"`
	// Index is "hnsw" or "exact" — which scorer produced the ranking.
	Index string `json:"index"`
	NeighborsResult
}

// NeighborsBatchRequest answers many neighbour queries in one request.
type NeighborsBatchRequest struct {
	Queries []NeighborsRequest `json:"queries"`
}

// NeighborsBatchResponse answers POST /v1/neighbors/batch. Results are
// positional: Results[i] answers Queries[i].
type NeighborsBatchResponse struct {
	Snapshot string            `json:"snapshot"`
	Index    string            `json:"index"`
	Results  []NeighborsResult `json:"results"`
}

// AnalogyRequest asks "A is to B as C is to ?" (3CosAdd over unit
// vectors, the query words excluded from the answer set).
type AnalogyRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	C string `json:"c"`
	// K is the answer count: 0 selects 1.
	K int `json:"k,omitempty"`
	// Exact forces the exact scan.
	Exact bool `json:"exact,omitempty"`
}

// AnalogyResult is one answered analogy.
type AnalogyResult struct {
	Answers []Hit `json:"answers,omitempty"`
	*Error
}

// AnalogyResponse answers POST /v1/analogy.
type AnalogyResponse struct {
	Snapshot string `json:"snapshot"`
	Index    string `json:"index"`
	AnalogyResult
}

// AnalogyBatchRequest answers many analogies in one request.
type AnalogyBatchRequest struct {
	Queries []AnalogyRequest `json:"queries"`
}

// AnalogyBatchResponse answers POST /v1/analogy/batch (positional).
type AnalogyBatchResponse struct {
	Snapshot string          `json:"snapshot"`
	Index    string          `json:"index"`
	Results  []AnalogyResult `json:"results"`
}

// LinkScoreRequest scores word pairs by embedding cosine — the serving
// form of the eval package's link-prediction scorer.
type LinkScoreRequest struct {
	// Pairs are [u, v] word pairs.
	Pairs [][2]string `json:"pairs"`
}

// LinkScore is one scored pair; a failed pair carries the error
// envelope fields instead of Score.
type LinkScore struct {
	U     string   `json:"u,omitempty"`
	V     string   `json:"v,omitempty"`
	Score *float32 `json:"score,omitempty"`
	*Error
}

// LinkScoreResponse answers POST /v1/linkscore (positional).
type LinkScoreResponse struct {
	Snapshot string      `json:"snapshot"`
	Scores   []LinkScore `json:"scores"`
}

// CacheInfo reports result-cache occupancy and effectiveness.
type CacheInfo struct {
	Capacity int    `json:"capacity"`
	Size     int    `json:"size"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// InfoResponse answers GET /v1/info.
type InfoResponse struct {
	Snapshot      string     `json:"snapshot"`
	ModelPath     string     `json:"model_path,omitempty"`
	Dim           int        `json:"dim"`
	VocabSize     int        `json:"vocab_size"`
	Index         string     `json:"index"`
	EfSearch      int        `json:"ef_search,omitempty"`
	LoadedAt      string     `json:"loaded_at"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Requests      uint64     `json:"requests"`
	Cache         *CacheInfo `json:"cache,omitempty"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Snapshot string `json:"snapshot"`
}
