package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphword2vec/internal/cliutil"
	"graphword2vec/internal/model"
	"graphword2vec/internal/vocab"
)

// writeModelFiles saves a model plus its vocabulary sidecar.
func writeModelFiles(t testing.TB, path string, m *model.Model, voc *vocab.Vocabulary) {
	t.Helper()
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("save model: %v", err)
	}
	if err := cliutil.SaveVocabSidecar(path, voc); err != nil {
		t.Fatalf("save vocab sidecar: %v", err)
	}
}

func diskModel(t testing.TB, dir string, n, dim int, seed uint64) (string, *vocab.Vocabulary) {
	t.Helper()
	path := filepath.Join(dir, "model.bin")
	voc := testVocab(t, n)
	m := model.New(n, dim)
	m.InitRandom(seed)
	writeModelFiles(t, path, m, voc)
	return path, voc
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	path, voc := diskModel(t, t.TempDir(), 40, 8, 3)
	snap, err := LoadSnapshot(path, StoreConfig{BuildANN: true})
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if snap.Vocab.Size() != voc.Size() || snap.Model.Dim != 8 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ANN == nil || snap.Norm == nil || snap.ID == "" {
		t.Fatalf("indexes missing: %+v", snap)
	}
	if snap.Vocab.Text(0) != voc.Text(0) {
		t.Fatalf("vocab id order changed across round trip")
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSnapshot(filepath.Join(dir, "missing.bin"), StoreConfig{}); err == nil {
		t.Fatal("missing model should error")
	}
	// Model without sidecar.
	path := filepath.Join(dir, "nosidecar.bin")
	m := model.New(10, 4)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path, StoreConfig{}); err == nil {
		t.Fatal("missing sidecar should error")
	}
	// Torn model file: truncated mid-matrix must be rejected, not served.
	tornPath, _ := diskModel(t, dir, 40, 8, 3)
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(tornPath, StoreConfig{}); err == nil {
		t.Fatal("torn model file should error")
	}
	// Sidecar/model size mismatch.
	mmPath, _ := diskModel(t, dir, 40, 8, 3)
	small := testVocab(t, 20)
	if err := cliutil.SaveVocabSidecar(mmPath, small); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(mmPath, StoreConfig{}); err == nil {
		t.Fatal("vocab/model size mismatch should error")
	}
}

// bumpMtime rewrites path with the same or new content and guarantees
// the mtime moves, so TryReload's cheap stat check fires even on
// filesystems with coarse timestamps.
func bumpMtime(t testing.TB, path string) {
	t.Helper()
	future := time.Now().Add(time.Duration(mtimeBumps.Add(1)) * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

var mtimeBumps atomic.Int64

func TestTryReloadSwapsOnContentChange(t *testing.T) {
	dir := t.TempDir()
	path, voc := diskModel(t, dir, 40, 8, 3)
	store, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	first := store.Current()

	// Touch without content change: stat differs, hash equal → no swap.
	bumpMtime(t, path)
	if swapped, err := store.TryReload(); err != nil || swapped {
		t.Fatalf("touch-only reload: swapped=%v err=%v", swapped, err)
	}
	if store.Current() != first {
		t.Fatal("touch-only reload replaced the snapshot")
	}

	// Real content change: new model bytes → swap.
	m2 := model.New(40, 8)
	m2.InitRandom(99)
	writeModelFiles(t, path, m2, voc)
	bumpMtime(t, path)
	swapped, err := store.TryReload()
	if err != nil || !swapped {
		t.Fatalf("content reload: swapped=%v err=%v", swapped, err)
	}
	second := store.Current()
	if second == first || second.ID == first.ID {
		t.Fatal("snapshot not replaced on content change")
	}
	if store.Swaps() != 1 {
		t.Fatalf("Swaps() = %d, want 1", store.Swaps())
	}
}

func TestTryReloadKeepsServingOnTornWrite(t *testing.T) {
	dir := t.TempDir()
	path, voc := diskModel(t, dir, 40, 8, 3)
	store, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	first := store.Current()

	// Simulate a torn write: truncated file on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	bumpMtime(t, path)
	if swapped, err := store.TryReload(); err == nil || swapped {
		t.Fatalf("torn write: swapped=%v err=%v, want error and no swap", swapped, err)
	}
	if store.Current() != first {
		t.Fatal("torn write replaced the live snapshot")
	}

	// Publisher finishes the write: next tick picks it up.
	m2 := model.New(40, 8)
	m2.InitRandom(77)
	writeModelFiles(t, path, m2, voc)
	bumpMtime(t, path)
	if swapped, err := store.TryReload(); err != nil || !swapped {
		t.Fatalf("completed write: swapped=%v err=%v", swapped, err)
	}
}

// TestHotReloadUnderLoad is the -race lane's core serving test: queries
// hammer the server while snapshots swap underneath. Every response
// must be internally consistent (a snapshot id the store actually
// served) and the server must never error.
func TestHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	path, voc := diskModel(t, dir, 60, 8, 1)
	store, err := OpenStore(path, StoreConfig{BuildANN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{})
	defer srv.Close()

	ids := map[string]bool{store.Current().ID: true}
	var idsMu sync.Mutex

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for seed := uint64(2); ; seed++ {
			select {
			case <-stop:
				return
			default:
			}
			m := model.New(60, 8)
			m.InitRandom(seed)
			writeModelFiles(t, path, m, voc)
			bumpMtime(t, path)
			if swapped, err := store.TryReload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			} else if swapped {
				idsMu.Lock()
				ids[store.Current().ID] = true
				idsMu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				word := voc.Text(int32((g*13 + i) % 60))
				w := do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: word, K: 5})
				if w.Code != http.StatusOK {
					t.Errorf("reader %d query %d: status %d body %q", g, i, w.Code, w.Body.String())
					return
				}
				var resp NeighborsResponse
				decodeAs(t, w, &resp)
				idsMu.Lock()
				known := ids[resp.Snapshot]
				idsMu.Unlock()
				if !known {
					t.Errorf("response snapshot %q was never installed", resp.Snapshot)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	if store.Swaps() == 0 {
		t.Log("no swap landed during the read window (slow filesystem); swap coverage comes from TestTryReloadSwapsOnContentChange")
	}
}

// TestCacheCorrectAcrossSwap: a query cached under the old snapshot must
// not answer after a swap — the snapshot-id key guarantees a miss and a
// fresh ranking from the new model.
func TestCacheCorrectAcrossSwap(t *testing.T) {
	dir := t.TempDir()
	path, voc := diskModel(t, dir, 50, 8, 5)
	store, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{})
	defer srv.Close()

	req := NeighborsRequest{Word: "w010", K: 5}
	var before NeighborsResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", req), &before)
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", req), &before) // cache hit
	if srv.cache.Info().Hits != 1 {
		t.Fatalf("expected a warm cache before the swap")
	}

	m2 := model.New(50, 8)
	m2.InitRandom(1234)
	writeModelFiles(t, path, m2, voc)
	bumpMtime(t, path)
	if swapped, err := store.TryReload(); err != nil || !swapped {
		t.Fatalf("swap: %v %v", swapped, err)
	}

	var after NeighborsResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", req), &after)
	if after.Snapshot == before.Snapshot {
		t.Fatal("post-swap response still carries the old snapshot id")
	}
	// A different random model must rank differently; identical rankings
	// would mean the cache leaked across the swap.
	same := len(after.Neighbors) == len(before.Neighbors)
	if same {
		for i := range after.Neighbors {
			if after.Neighbors[i] != before.Neighbors[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("post-swap ranking identical to pre-swap cache entry")
	}
	info := srv.cache.Info()
	if info.Misses < 2 {
		t.Fatalf("cache stats = %+v: post-swap query should have missed", info)
	}
}

func TestStartPollingSwaps(t *testing.T) {
	dir := t.TempDir()
	path, voc := diskModel(t, dir, 30, 8, 9)
	store, err := OpenStore(path, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	store.StartPolling(2 * time.Millisecond)
	defer store.Close()

	m2 := model.New(30, 8)
	m2.InitRandom(55)
	writeModelFiles(t, path, m2, voc)
	bumpMtime(t, path)

	deadline := time.Now().Add(5 * time.Second)
	for store.Swaps() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store.Swaps() == 0 {
		t.Fatal("poller never picked up the new model")
	}
	store.Close()
	store.Close() // idempotent
}
