package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func TestHealthz(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, false), Config{})
	w := do(t, srv, http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	var h HealthResponse
	decodeAs(t, w, &h)
	if h.Status != "ok" || h.Snapshot != "test-snap" {
		t.Fatalf("health = %+v", h)
	}
}

func TestInfo(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, true), Config{EfSearch: 48})
	w := do(t, srv, http.MethodGet, "/v1/info", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %q)", w.Code, w.Body.String())
	}
	var info InfoResponse
	decodeAs(t, w, &info)
	if info.VocabSize != 50 || info.Dim != 8 || info.Index != "hnsw" || info.EfSearch != 48 {
		t.Fatalf("info = %+v", info)
	}
	if info.Cache == nil || info.Cache.Capacity != 4096 {
		t.Fatalf("cache info = %+v", info.Cache)
	}
}

// TestRequestErrors is the graded error matrix: every malformed input
// maps to the documented (status, code) pair from API.md.
func TestRequestErrors(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, false), Config{MaxBatch: 4, MaxBodyBytes: 512})
	oversized := NeighborsBatchRequest{Queries: make([]NeighborsRequest, 5)}
	for i := range oversized.Queries {
		oversized.Queries[i] = NeighborsRequest{Word: "w000"}
	}
	cases := []struct {
		name   string
		method string
		path   string
		body   interface{}
		status int
		code   string
	}{
		{"unknown path", http.MethodGet, "/v2/neighbors", nil, http.StatusNotFound, CodeNotFound},
		{"wrong method", http.MethodGet, "/v1/neighbors", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"bad JSON", http.MethodPost, "/v1/neighbors", `{"word": `, http.StatusBadRequest, CodeBadRequest},
		{"empty word", http.MethodPost, "/v1/neighbors", NeighborsRequest{}, http.StatusBadRequest, CodeBadRequest},
		{"OOV word", http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "zebra"}, http.StatusNotFound, CodeNotFound},
		{"negative k", http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w000", K: -1}, http.StatusBadRequest, CodeBadRequest},
		{"oversized batch", http.MethodPost, "/v1/neighbors/batch", oversized, http.StatusRequestEntityTooLarge, CodeBatchTooLarge},
		{"empty batch", http.MethodPost, "/v1/neighbors/batch", NeighborsBatchRequest{}, http.StatusBadRequest, CodeBadRequest},
		{"oversized body", http.MethodPost, "/v1/neighbors", `{"word":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge, CodeBadRequest},
		{"analogy missing word", http.MethodPost, "/v1/analogy", AnalogyRequest{A: "w000", B: "w001"}, http.StatusBadRequest, CodeBadRequest},
		{"analogy OOV", http.MethodPost, "/v1/analogy", AnalogyRequest{A: "w000", B: "w001", C: "zebra"}, http.StatusNotFound, CodeNotFound},
		{"linkscore empty", http.MethodPost, "/v1/linkscore", LinkScoreRequest{}, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, do(t, srv, tc.method, tc.path, tc.body), tc.status, tc.code)
		})
	}
}

func TestNeighborsBasic(t *testing.T) {
	snap := testSnapshot(t, 50, 8, false)
	srv := testServer(t, snap, Config{})
	w := do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w007", K: 5})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (body %q)", w.Code, w.Body.String())
	}
	var resp NeighborsResponse
	decodeAs(t, w, &resp)
	if resp.Snapshot != "test-snap" || resp.Index != "exact" || resp.Word != "w007" {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Neighbors) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(resp.Neighbors))
	}
	for i, h := range resp.Neighbors {
		if h.Word == "w007" {
			t.Fatalf("query word returned as its own neighbour")
		}
		if i > 0 && h.Score > resp.Neighbors[i-1].Score {
			t.Fatalf("neighbors not sorted by score desc: %+v", resp.Neighbors)
		}
	}
}

// TestNeighborsKSemantics: k=0 selects the default, k beyond vocab−1 is
// clamped.
func TestNeighborsKSemantics(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 30, 8, false), Config{DefaultK: 7})
	var resp NeighborsResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w000"}), &resp)
	if len(resp.Neighbors) != 7 {
		t.Fatalf("default k: got %d neighbors, want 7", len(resp.Neighbors))
	}
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w000", K: 10000}), &resp)
	if len(resp.Neighbors) != 29 {
		t.Fatalf("clamped k: got %d neighbors, want 29 (vocab-1)", len(resp.Neighbors))
	}
}

// TestExactHNSWParity: on a small vocabulary with a wide beam the ANN
// path must return the identical ranking to the exact scan.
func TestExactHNSWParity(t *testing.T) {
	snap := testSnapshot(t, 200, 16, true)
	srv := testServer(t, snap, Config{EfSearch: 200, CacheEntries: -1})
	for _, word := range []string{"w000", "w042", "w199"} {
		var exact, ann NeighborsResponse
		decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: word, K: 10, Exact: true}), &exact)
		decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: word, K: 10}), &ann)
		if exact.Index != "exact" || ann.Index != "hnsw" {
			t.Fatalf("index labels: exact=%q ann=%q", exact.Index, ann.Index)
		}
		if !reflect.DeepEqual(exact.Neighbors, ann.Neighbors) {
			t.Fatalf("%s: ann ranking diverges from exact\nexact: %+v\nann:   %+v", word, exact.Neighbors, ann.Neighbors)
		}
	}
}

func TestNeighborsBatchPositional(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 60, 8, false), Config{})
	req := NeighborsBatchRequest{Queries: []NeighborsRequest{
		{Word: "w001", K: 3},
		{Word: "zebra"},
		{Word: "w002", K: 2},
	}}
	w := do(t, srv, http.MethodPost, "/v1/neighbors/batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (body %q)", w.Code, w.Body.String())
	}
	var resp NeighborsBatchResponse
	decodeAs(t, w, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Word != "w001" || len(resp.Results[0].Neighbors) != 3 {
		t.Fatalf("result[0] = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeNotFound {
		t.Fatalf("result[1] should be not_found, got %+v", resp.Results[1])
	}
	if resp.Results[2].Word != "w002" || len(resp.Results[2].Neighbors) != 2 {
		t.Fatalf("result[2] = %+v", resp.Results[2])
	}
}

// TestBatchMatchesSingles: a batch answer must be element-wise identical
// to the same queries issued one at a time.
func TestBatchMatchesSingles(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 120, 12, true), Config{CacheEntries: -1})
	var queries []NeighborsRequest
	for i := 0; i < 24; i++ {
		queries = append(queries, NeighborsRequest{Word: fmt.Sprintf("w%03d", i*5), K: 8})
	}
	var batch NeighborsBatchResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors/batch", NeighborsBatchRequest{Queries: queries}), &batch)
	for i, q := range queries {
		var single NeighborsResponse
		decodeAs(t, do(t, srv, http.MethodPost, "/v1/neighbors", q), &single)
		if !reflect.DeepEqual(single.NeighborsResult, batch.Results[i]) {
			t.Fatalf("query %d: batch result diverges from single\nsingle: %+v\nbatch:  %+v", i, single.NeighborsResult, batch.Results[i])
		}
	}
}

func TestAnalogy(t *testing.T) {
	snap := testSnapshot(t, 100, 12, false)
	srv := testServer(t, snap, Config{})
	req := AnalogyRequest{A: "w001", B: "w002", C: "w003", K: 4}
	w := do(t, srv, http.MethodPost, "/v1/analogy", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (body %q)", w.Code, w.Body.String())
	}
	var resp AnalogyResponse
	decodeAs(t, w, &resp)
	if len(resp.Answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(resp.Answers))
	}
	for _, h := range resp.Answers {
		if h.Word == "w001" || h.Word == "w002" || h.Word == "w003" {
			t.Fatalf("query word %q leaked into answers", h.Word)
		}
	}

	// The served answer must agree with the index the eval path uses.
	target := make([]float32, snap.Norm.Dim())
	snap.Norm.AnalogyInto(target, 1, 2, 3)
	want := snap.Norm.TopK(nil, target, 4, 1, 2, 3)
	for i, c := range want {
		if resp.Answers[i].Word != snap.Vocab.Text(c.ID) || resp.Answers[i].Score != c.Score {
			t.Fatalf("answer %d = %+v, want id=%d score=%v", i, resp.Answers[i], c.ID, c.Score)
		}
	}
}

func TestAnalogyBatch(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 80, 8, false), Config{})
	req := AnalogyBatchRequest{Queries: []AnalogyRequest{
		{A: "w001", B: "w002", C: "w003"},
		{A: "w001", B: "zebra", C: "w003"},
	}}
	var resp AnalogyBatchResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/analogy/batch", req), &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if len(resp.Results[0].Answers) != 1 || resp.Results[0].Error != nil {
		t.Fatalf("result[0] = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeNotFound {
		t.Fatalf("result[1] = %+v", resp.Results[1])
	}
}

func TestLinkScore(t *testing.T) {
	snap := testSnapshot(t, 40, 8, false)
	srv := testServer(t, snap, Config{})
	req := LinkScoreRequest{Pairs: [][2]string{{"w001", "w002"}, {"w001", "zebra"}, {"w003", "w003"}}}
	var resp LinkScoreResponse
	decodeAs(t, do(t, srv, http.MethodPost, "/v1/linkscore", req), &resp)
	if len(resp.Scores) != 3 {
		t.Fatalf("got %d scores", len(resp.Scores))
	}
	if resp.Scores[0].Score == nil {
		t.Fatalf("scores[0] = %+v", resp.Scores[0])
	}
	want := dotRows(snap, 1, 2)
	if *resp.Scores[0].Score != want {
		t.Fatalf("score = %v, want %v", *resp.Scores[0].Score, want)
	}
	if resp.Scores[1].Error == nil || resp.Scores[1].Error.Code != CodeNotFound {
		t.Fatalf("scores[1] = %+v", resp.Scores[1])
	}
	// Self-similarity of a unit vector is 1 (within float tolerance).
	if resp.Scores[2].Score == nil || *resp.Scores[2].Score < 0.999 {
		t.Fatalf("self score = %+v, want ~1", resp.Scores[2])
	}
}

// TestCacheHitIdentical: the second identical query is a cache hit and
// returns a byte-identical body.
func TestCacheHitIdentical(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, false), Config{})
	req := NeighborsRequest{Word: "w004", K: 6}
	first := do(t, srv, http.MethodPost, "/v1/neighbors", req)
	second := do(t, srv, http.MethodPost, "/v1/neighbors", req)
	if first.Body.String() != second.Body.String() {
		t.Fatalf("cache hit body diverges:\n%s\n%s", first.Body.String(), second.Body.String())
	}
	info := srv.cache.Info()
	if info.Hits != 1 || info.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", info)
	}
}

// TestCacheKeyedOnParams: changing k, exact or endpoint must miss.
func TestCacheKeyedOnParams(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, true), Config{})
	do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w004", K: 6})
	do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w004", K: 7})
	do(t, srv, http.MethodPost, "/v1/neighbors", NeighborsRequest{Word: "w004", K: 6, Exact: true})
	info := srv.cache.Info()
	if info.Hits != 0 || info.Misses != 3 {
		t.Fatalf("cache stats = %+v, want 0 hits / 3 misses", info)
	}
}

func TestCacheDisabled(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, false), Config{CacheEntries: -1})
	if srv.cache != nil {
		t.Fatalf("cache should be disabled")
	}
	req := NeighborsRequest{Word: "w004"}
	a := do(t, srv, http.MethodPost, "/v1/neighbors", req)
	b := do(t, srv, http.MethodPost, "/v1/neighbors", req)
	if a.Code != http.StatusOK || a.Body.String() != b.Body.String() {
		t.Fatalf("uncached responses diverge")
	}
}

// TestUnknownRequestFieldsIgnored pins the compat policy: unknown
// request fields must not be errors (API.md §6).
func TestUnknownRequestFieldsIgnored(t *testing.T) {
	srv := testServer(t, testSnapshot(t, 50, 8, false), Config{})
	w := do(t, srv, http.MethodPost, "/v1/neighbors", `{"word":"w001","k":2,"future_field":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("unknown field rejected: %d %q", w.Code, w.Body.String())
	}
}
