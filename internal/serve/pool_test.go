package serve

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolDo(t *testing.T) {
	p := NewScorerPool(2)
	defer p.Close()
	ran := false
	p.Do(func(sc *Scratch) {
		if sc == nil {
			t.Error("nil scratch")
		}
		ran = true
	})
	if !ran {
		t.Fatal("Do returned before the job ran")
	}
}

func TestPoolDoN(t *testing.T) {
	p := NewScorerPool(3)
	defer p.Close()
	const n = 100
	var seen [n]atomic.Int32
	p.DoN(n, func(i int, sc *Scratch) { seen[i].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewScorerPool(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestScratchReuse(t *testing.T) {
	sc := &Scratch{}
	a := sc.targetFor(16)
	b := sc.targetFor(8)
	if &a[0] != &b[0] {
		t.Fatal("smaller target reallocated")
	}
	c := sc.targetFor(32)
	if len(c) != 32 {
		t.Fatalf("len = %d", len(c))
	}
}

// TestPoolBoundsConcurrency: at most `workers` jobs run at once even
// when many more are queued.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewScorerPool(workers)
	defer p.Close()
	var cur, peak atomic.Int32
	p.DoN(64, func(i int, sc *Scratch) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		for spin := 0; spin < 1000; spin++ { //nolint:revive // busy-wait widens the overlap window
			_ = spin
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool size %d", got, workers)
	}
}
