package serve

import (
	"runtime"
	"sync"

	"graphword2vec/internal/index"
)

// Scratch is one scorer worker's reusable state: the query/target
// vector, the candidate buffer, and the HNSW search scratch. Handlers
// never allocate these per request — all candidate scoring runs inside
// a pool worker, on that worker's Scratch.
type Scratch struct {
	target   []float32
	cands    []index.Candidate
	searcher *index.Searcher
}

// targetFor returns the scratch target buffer sized to dim.
func (sc *Scratch) targetFor(dim int) []float32 {
	if cap(sc.target) < dim {
		sc.target = make([]float32, dim)
	}
	return sc.target[:dim]
}

// searcherFor returns HNSW search scratch fitting h, reallocating only
// after a hot swap changed the index size.
func (sc *Scratch) searcherFor(h *index.HNSW) *index.Searcher {
	if sc.searcher == nil || !sc.searcher.Fits(h) {
		sc.searcher = index.NewSearcher(h)
	}
	return sc.searcher
}

// ScorerPool funnels all candidate scoring through a fixed set of
// worker goroutines. HTTP handler goroutines are cheap and unbounded;
// the dot-product scans they trigger are not. Routing every scoring
// task — single queries and batch items alike — through one bounded
// pool caps scoring concurrency at the worker count (so p99 latency
// degrades by queueing, not by thrashing GOMAXPROCS), and gives each
// worker persistent scratch so the steady-state query path does not
// allocate.
type ScorerPool struct {
	jobs    chan poolJob
	wg      sync.WaitGroup
	workers int
}

type poolJob struct {
	run  func(*Scratch)
	done *sync.WaitGroup
}

// NewScorerPool starts workers goroutines (<= 0 selects GOMAXPROCS).
func NewScorerPool(workers int) *ScorerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ScorerPool{
		jobs:    make(chan poolJob, 4*workers),
		workers: workers,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			sc := &Scratch{}
			for job := range p.jobs {
				job.run(sc)
				job.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *ScorerPool) Workers() int { return p.workers }

// Do runs fn on a pool worker and waits for it.
func (p *ScorerPool) Do(fn func(*Scratch)) {
	var done sync.WaitGroup
	done.Add(1)
	p.jobs <- poolJob{run: fn, done: &done}
	done.Wait()
}

// DoN runs fn(0..n-1), each call as one pool job, and waits for all of
// them — the fan-out step of the batch endpoints.
func (p *ScorerPool) DoN(n int, fn func(i int, sc *Scratch)) {
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.jobs <- poolJob{run: func(sc *Scratch) { fn(i, sc) }, done: &done}
	}
	done.Wait()
}

// Close drains the pool. Pending jobs finish; Do/DoN must not be
// called after Close.
func (p *ScorerPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
