package serve

import (
	"container/list"
	"sync"
)

// resultCache is the LRU result cache. Keys embed the snapshot id (see
// cacheKey in server.go), so entries computed against a superseded
// snapshot can never be returned after a hot swap — they simply stop
// being looked up and age out of the LRU. Values are fully marshalled
// response bodies, making a hit a single map lookup plus a write.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded to capacity entries.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// Get returns the cached body for key, promoting it to most recent.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry
// when full. The caller must not mutate body afterwards.
func (c *resultCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Info snapshots occupancy and hit statistics.
func (c *resultCache) Info() CacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheInfo{
		Capacity: c.capacity,
		Size:     c.order.Len(),
		Hits:     c.hits,
		Misses:   c.misses,
	}
}
