package serve

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"graphword2vec/internal/index"
	"graphword2vec/internal/model"
	"graphword2vec/internal/vocab"
)

// Snapshot is one immutable, fully indexed model version: the raw
// model, its vocabulary, the normalized query index, and (optionally)
// the HNSW approximate index. A snapshot is never mutated after
// LoadSnapshot returns — hot reload builds a complete replacement and
// swaps an atomic pointer, so every structure here is safe for
// unsynchronised concurrent readers (DESIGN.md §9).
type Snapshot struct {
	// ID identifies the snapshot: the FNV-64a hash of the model file
	// and vocabulary sidecar bytes, in hex. Equal content ⇒ equal id,
	// so a rewrite with identical bytes is not a new snapshot.
	ID string
	// ModelPath is the file the snapshot was loaded from ("" when
	// constructed in memory).
	ModelPath string
	Model     *model.Model
	Vocab     *vocab.Vocabulary
	Norm      *index.Normalized
	// ANN is the approximate index, nil when the store is exact-only.
	ANN *index.HNSW
	// LoadedAt is when the snapshot became current.
	LoadedAt time.Time
	// BuildTime is how long index construction took.
	BuildTime time.Duration

	mtime time.Time
	size  int64
}

// StoreConfig configures snapshot loading.
type StoreConfig struct {
	// BuildANN builds the HNSW index on load; false serves exact-only.
	BuildANN bool
	// HNSW are the index build parameters (zero value = defaults).
	HNSW index.HNSWConfig
}

// LoadSnapshot reads a model (and its .vocab sidecar) from disk and
// builds the query indexes. A torn read — the training cluster mid-way
// through publishing a new snapshot — surfaces as a parse or size
// mismatch error; the caller (the store's poller) keeps the current
// snapshot and retries on the next tick.
func LoadSnapshot(modelPath string, cfg StoreConfig) (*Snapshot, error) {
	st, err := os.Stat(modelPath)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	modelBytes, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	vocabBytes, err := os.ReadFile(modelPath + ".vocab")
	if err != nil {
		return nil, fmt.Errorf("serve: vocabulary sidecar: %w", err)
	}

	h := fnv.New64a()
	h.Write(modelBytes)
	h.Write([]byte{0})
	h.Write(vocabBytes)
	id := fmt.Sprintf("%016x", h.Sum64())

	m, err := model.Load(bytes.NewReader(modelBytes))
	if err != nil {
		return nil, err
	}
	voc, err := vocab.ReadCounts(bytes.NewReader(vocabBytes), vocab.Options{MinCount: 1})
	if err != nil {
		return nil, err
	}
	if voc.Size() != m.VocabSize() {
		return nil, fmt.Errorf("serve: vocabulary has %d words but model has %d rows", voc.Size(), m.VocabSize())
	}
	snap := NewSnapshot(id, m, voc, cfg)
	snap.ModelPath = modelPath
	snap.mtime, snap.size = st.ModTime(), st.Size()
	return snap, nil
}

// NewSnapshot builds the query indexes over an in-memory model — the
// path tests and the serve-latency harness use; LoadSnapshot routes
// through it too.
func NewSnapshot(id string, m *model.Model, voc *vocab.Vocabulary, cfg StoreConfig) *Snapshot {
	start := time.Now()
	snap := &Snapshot{
		ID:    id,
		Model: m,
		Vocab: voc,
		Norm:  index.NewNormalized(m),
	}
	if cfg.BuildANN {
		snap.ANN = index.BuildHNSW(snap.Norm, cfg.HNSW)
	}
	snap.BuildTime = time.Since(start)
	snap.LoadedAt = time.Now()
	return snap
}

// IndexName returns the scorer the snapshot answers with by default.
func (s *Snapshot) IndexName() string {
	if s.ANN != nil {
		return "hnsw"
	}
	return "exact"
}

// Store holds the current snapshot behind an atomic pointer and hot
// swaps it when the model file changes on disk. Readers call Current
// once per request and keep that pointer for the request's lifetime:
// in-flight requests finish on the snapshot they started with, new
// requests see the new one, and the old snapshot is garbage collected
// when the last in-flight request drops it. There are no locks on the
// read path and readers are never stalled by a reload (the MVPipe
// principle: updates are prepared off to the side and installed
// in-place).
type Store struct {
	cur  atomic.Pointer[Snapshot]
	cfg  StoreConfig
	path string

	// OnSwap, when set before StartPolling, observes every successful
	// swap (logging, metrics).
	OnSwap func(old, new *Snapshot)
	// OnError, when set before StartPolling, observes failed reload
	// attempts (the store keeps serving the current snapshot).
	OnError func(error)

	pollMu   sync.Mutex
	reloadMu sync.Mutex
	stop     chan struct{}
	done     chan struct{}
	swapped  atomic.Uint64
	failures atomic.Uint64
}

// NewStore wraps an already-loaded snapshot. path may be empty for
// purely in-memory stores (tests, benchmarks); polling then has
// nothing to watch and StartPolling is a no-op.
func NewStore(snap *Snapshot, cfg StoreConfig) *Store {
	st := &Store{cfg: cfg, path: snap.ModelPath}
	st.cur.Store(snap)
	return st
}

// OpenStore loads the snapshot at modelPath and wraps it.
func OpenStore(modelPath string, cfg StoreConfig) (*Store, error) {
	snap, err := LoadSnapshot(modelPath, cfg)
	if err != nil {
		return nil, err
	}
	return NewStore(snap, cfg), nil
}

// Current returns the live snapshot. The result is immutable; callers
// use it for at most one request.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// Swaps returns how many hot swaps have been installed.
func (s *Store) Swaps() uint64 { return s.swapped.Load() }

// TryReload checks the model file and swaps in a new snapshot when its
// content changed. It reports whether a swap happened. The mtime/size
// pair is the cheap first-level check (no hashing on an idle tick);
// the content hash is the authoritative second level, so a rewrite
// with identical bytes — or a touch(1) — swaps nothing.
func (s *Store) TryReload() (bool, error) {
	if s.path == "" {
		return false, nil
	}
	// Serialise reloads: the poller goroutine and any direct caller
	// (tests, an admin endpoint) must not race on the stat cache below.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.Current()
	st, err := os.Stat(s.path)
	if err != nil {
		s.failures.Add(1)
		return false, err
	}
	if st.ModTime().Equal(cur.mtime) && st.Size() == cur.size {
		return false, nil
	}
	next, err := LoadSnapshot(s.path, s.cfg)
	if err != nil {
		s.failures.Add(1)
		return false, err
	}
	if next.ID == cur.ID {
		// Same content, new stat — remember the stat so the next tick
		// is cheap again. cur is shared with readers, but these two
		// fields are only ever read by TryReload itself, which callers
		// serialise (the poller is a single goroutine).
		cur.mtime, cur.size = next.mtime, next.size
		return false, nil
	}
	s.cur.Store(next)
	s.swapped.Add(1)
	if s.OnSwap != nil {
		s.OnSwap(cur, next)
	}
	return true, nil
}

// StartPolling launches the reload poller at the given interval. The
// poller is the store's only writer; stop it with Close.
func (s *Store) StartPolling(interval time.Duration) {
	if s.path == "" || interval <= 0 {
		return
	}
	s.pollMu.Lock()
	defer s.pollMu.Unlock()
	if s.stop != nil {
		return // already polling
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := s.TryReload(); err != nil && s.OnError != nil {
					s.OnError(err)
				}
			}
		}
	}(s.stop, s.done)
}

// Close stops the poller (idempotent).
func (s *Store) Close() {
	s.pollMu.Lock()
	defer s.pollMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}
