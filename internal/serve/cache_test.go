package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", []byte("A"))
	if body, ok := c.Get("a"); !ok || string(body) != "A" {
		t.Fatalf("Get(a) = %q %v", body, ok)
	}
	c.Put("a", []byte("A2"))
	if body, _ := c.Get("a"); string(body) != "A2" {
		t.Fatalf("update not visible: %q", body)
	}
	info := c.Info()
	if info.Size != 1 || info.Hits != 2 || info.Misses != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a") // promote a → b is now LRU
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c (just inserted) was evicted")
	}
	if got := c.Info().Size; got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

// TestCacheConcurrent exercises the mutex under -race.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%64)
				if body, ok := c.Get(key); ok && len(body) == 0 {
					t.Errorf("empty cached body for %s", key)
					return
				}
				c.Put(key, []byte(key))
			}
		}(g)
	}
	wg.Wait()
	if size := c.Info().Size; size > 32 {
		t.Fatalf("cache grew past capacity: %d", size)
	}
}

func TestCacheKeySeparatorUnambiguous(t *testing.T) {
	// "ab"+"c" and "a"+"bc" must produce different keys.
	if cacheKey("ab", "c") == cacheKey("a", "bc") {
		t.Fatal("cache key separator is ambiguous")
	}
}
