// Package serve is the embedding query service behind cmd/gw2v-serve:
// a versioned HTTP/JSON API (API.md) over a hot-reloadable model store.
// Queries are answered from a read-only index.Normalized (exact scan)
// or index.HNSW (approximate, exact re-rank), all candidate scoring is
// funnelled through one bounded scorer goroutine pool, and single-query
// results are cached in an LRU keyed on (snapshot id, query) so a hot
// swap can never serve stale rankings. See DESIGN.md §9 for the
// architecture and the snapshot-swap safety argument.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"graphword2vec/internal/index"
	"graphword2vec/internal/vecmath"
)

// Config tunes the server. The zero value selects every default.
type Config struct {
	// DefaultK is the neighbour count when a request leaves k at 0
	// (default 10).
	DefaultK int
	// MaxBatch bounds Queries/Pairs per batch request (default 256).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheEntries sizes the LRU result cache; 0 selects 4096 and
	// negative disables caching.
	CacheEntries int
	// Scorers sizes the scorer pool (default GOMAXPROCS).
	Scorers int
	// EfSearch overrides the ANN beam width (0 = index default).
	EfSearch int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.DefaultK == 0 {
		c.DefaultK = 10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Server answers the /v1 API over a Store. It implements http.Handler;
// Close releases the scorer pool (the store is closed by its owner).
type Server struct {
	store    *Store
	cfg      Config
	pool     *ScorerPool
	cache    *resultCache // nil when disabled
	routes   map[string]route
	start    time.Time
	requests atomic.Uint64
}

type route struct {
	method string
	handle func(w http.ResponseWriter, r *http.Request)
}

// New builds a Server over store.
func New(store *Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		store: store,
		cfg:   cfg,
		pool:  NewScorerPool(cfg.Scorers),
		start: time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	s.routes = map[string]route{
		"/healthz":            {http.MethodGet, s.handleHealthz},
		"/v1/info":            {http.MethodGet, s.handleInfo},
		"/v1/neighbors":       {http.MethodPost, s.handleNeighbors},
		"/v1/neighbors/batch": {http.MethodPost, s.handleNeighborsBatch},
		"/v1/analogy":         {http.MethodPost, s.handleAnalogy},
		"/v1/analogy/batch":   {http.MethodPost, s.handleAnalogyBatch},
		"/v1/linkscore":       {http.MethodPost, s.handleLinkScore},
	}
	return s
}

// Close releases the scorer pool. In-flight requests must have
// drained (http.Server.Shutdown does that).
func (s *Server) Close() { s.pool.Close() }

// ServeHTTP routes a request; unknown paths and wrong methods get the
// uniform error envelope.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rt, ok := s.routes[r.URL.Path]
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no such endpoint %q; see API.md", r.URL.Path))
		return
	}
	if r.Method != rt.method {
		w.Header().Set("Allow", rt.method)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("%s requires %s, got %s", r.URL.Path, rt.method, r.Method))
		return
	}
	rt.handle(w, r)
}

// writeJSON marshals v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeBody(w, status, append(body, '\n'))
}

// writeBody writes a pre-marshalled JSON body.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// writeError emits the error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	body, _ := json.Marshal(Error{Code: code, Message: message})
	writeBody(w, status, append(body, '\n'))
}

// decode reads a bounded JSON body into dst. Unknown fields are
// ignored (API.md §6: additive request evolution).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// snapshot returns the live snapshot or writes 503.
func (s *Server) snapshot(w http.ResponseWriter) *Snapshot {
	snap := s.store.Current()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "no model snapshot loaded")
	}
	return snap
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Snapshot: snap.ID})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	info := InfoResponse{
		Snapshot:      snap.ID,
		ModelPath:     snap.ModelPath,
		Dim:           snap.Model.Dim,
		VocabSize:     snap.Vocab.Size(),
		Index:         snap.IndexName(),
		LoadedAt:      snap.LoadedAt.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
	}
	if snap.ANN != nil {
		info.EfSearch = s.efSearch(snap)
	}
	if s.cache != nil {
		ci := s.cache.Info()
		info.Cache = &ci
	}
	writeJSON(w, http.StatusOK, info)
}

// efSearch resolves the effective ANN beam width.
func (s *Server) efSearch(snap *Snapshot) int {
	if s.cfg.EfSearch > 0 {
		return s.cfg.EfSearch
	}
	return snap.ANN.Config().EfSearch
}

// resolveK validates and clamps a requested k against the snapshot.
func (s *Server) resolveK(snap *Snapshot, k, def int) (int, *Error) {
	if k < 0 {
		return 0, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("k must be non-negative, got %d", k)}
	}
	if k == 0 {
		k = def
	}
	if max := snap.Vocab.Size() - 1; k > max {
		k = max // clamp: asking for more neighbours than exist is not an error
	}
	return k, nil
}

// useExact reports whether the query should take the exact scan.
func useExact(snap *Snapshot, exact bool) bool { return exact || snap.ANN == nil }

// indexName names the scorer a query used.
func indexName(snap *Snapshot, exact bool) string {
	if useExact(snap, exact) {
		return "exact"
	}
	return "hnsw"
}

// neighborsOne answers one neighbour query on a worker's scratch.
func (s *Server) neighborsOne(snap *Snapshot, sc *Scratch, q NeighborsRequest) NeighborsResult {
	if q.Word == "" {
		return NeighborsResult{Error: &Error{Code: CodeBadRequest, Message: "word is required"}}
	}
	id := snap.Vocab.ID(q.Word)
	if id < 0 {
		return NeighborsResult{Error: &Error{Code: CodeNotFound, Message: fmt.Sprintf("%q not in vocabulary", q.Word)}}
	}
	k, apiErr := s.resolveK(snap, q.K, s.cfg.DefaultK)
	if apiErr != nil {
		return NeighborsResult{Error: apiErr}
	}
	target := sc.targetFor(snap.Norm.Dim())
	snap.Norm.QueryInto(target, id)
	if useExact(snap, q.Exact) {
		sc.cands = snap.Norm.TopK(sc.cands, target, k, id)
	} else {
		sc.cands = snap.ANN.SearchWith(sc.searcherFor(snap.ANN), sc.cands, target, k, s.efSearch(snap), []int32{id})
	}
	return NeighborsResult{Word: q.Word, Neighbors: hits(snap, sc.cands)}
}

// analogyOne answers one analogy query on a worker's scratch.
func (s *Server) analogyOne(snap *Snapshot, sc *Scratch, q AnalogyRequest) AnalogyResult {
	words := [3]string{q.A, q.B, q.C}
	var ids [3]int32
	for i, wd := range words {
		if wd == "" {
			return AnalogyResult{Error: &Error{Code: CodeBadRequest, Message: "a, b and c are required"}}
		}
		id := snap.Vocab.ID(wd)
		if id < 0 {
			return AnalogyResult{Error: &Error{Code: CodeNotFound, Message: fmt.Sprintf("%q not in vocabulary", wd)}}
		}
		ids[i] = id
	}
	k, apiErr := s.resolveK(snap, q.K, 1)
	if apiErr != nil {
		return AnalogyResult{Error: apiErr}
	}
	target := sc.targetFor(snap.Norm.Dim())
	snap.Norm.AnalogyInto(target, ids[0], ids[1], ids[2])
	excl := []int32{ids[0], ids[1], ids[2]}
	if useExact(snap, q.Exact) {
		sc.cands = snap.Norm.TopK(sc.cands, target, k, excl...)
	} else {
		sc.cands = snap.ANN.SearchWith(sc.searcherFor(snap.ANN), sc.cands, target, k, s.efSearch(snap), excl)
	}
	return AnalogyResult{Answers: hits(snap, sc.cands)}
}

// hits maps candidates to wire hits.
func hits(snap *Snapshot, cands []index.Candidate) []Hit {
	out := make([]Hit, len(cands))
	for i, c := range cands {
		out[i] = Hit{Word: snap.Vocab.Text(c.ID), Score: c.Score}
	}
	return out
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	var req NeighborsRequest
	if !s.decode(w, r, &req) {
		return
	}
	key := cacheKey(snap.ID, "nb", req.Word, strconv.Itoa(req.K), strconv.FormatBool(req.Exact))
	if body, ok := s.cacheGet(key); ok {
		writeBody(w, http.StatusOK, body)
		return
	}
	var res NeighborsResult
	s.pool.Do(func(sc *Scratch) { res = s.neighborsOne(snap, sc, req) })
	if res.Error != nil {
		writeError(w, statusFor(res.Error.Code), res.Error.Code, res.Error.Message)
		return
	}
	resp := NeighborsResponse{Snapshot: snap.ID, Index: indexName(snap, req.Exact), NeighborsResult: res}
	s.respondCached(w, key, resp)
}

func (s *Server) handleNeighborsBatch(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	var req NeighborsBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if apiErr := s.checkBatch(len(req.Queries)); apiErr != nil {
		writeError(w, statusFor(apiErr.Code), apiErr.Code, apiErr.Message)
		return
	}
	results := make([]NeighborsResult, len(req.Queries))
	s.pool.DoN(len(req.Queries), func(i int, sc *Scratch) {
		results[i] = s.neighborsOne(snap, sc, req.Queries[i])
	})
	writeJSON(w, http.StatusOK, NeighborsBatchResponse{
		Snapshot: snap.ID,
		Index:    snap.IndexName(),
		Results:  results,
	})
}

func (s *Server) handleAnalogy(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	var req AnalogyRequest
	if !s.decode(w, r, &req) {
		return
	}
	key := cacheKey(snap.ID, "an", req.A, req.B, req.C, strconv.Itoa(req.K), strconv.FormatBool(req.Exact))
	if body, ok := s.cacheGet(key); ok {
		writeBody(w, http.StatusOK, body)
		return
	}
	var res AnalogyResult
	s.pool.Do(func(sc *Scratch) { res = s.analogyOne(snap, sc, req) })
	if res.Error != nil {
		writeError(w, statusFor(res.Error.Code), res.Error.Code, res.Error.Message)
		return
	}
	resp := AnalogyResponse{Snapshot: snap.ID, Index: indexName(snap, req.Exact), AnalogyResult: res}
	s.respondCached(w, key, resp)
}

func (s *Server) handleAnalogyBatch(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	var req AnalogyBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if apiErr := s.checkBatch(len(req.Queries)); apiErr != nil {
		writeError(w, statusFor(apiErr.Code), apiErr.Code, apiErr.Message)
		return
	}
	results := make([]AnalogyResult, len(req.Queries))
	s.pool.DoN(len(req.Queries), func(i int, sc *Scratch) {
		results[i] = s.analogyOne(snap, sc, req.Queries[i])
	})
	writeJSON(w, http.StatusOK, AnalogyBatchResponse{
		Snapshot: snap.ID,
		Index:    snap.IndexName(),
		Results:  results,
	})
}

func (s *Server) handleLinkScore(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w)
	if snap == nil {
		return
	}
	var req LinkScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	if apiErr := s.checkBatch(len(req.Pairs)); apiErr != nil {
		writeError(w, statusFor(apiErr.Code), apiErr.Code, apiErr.Message)
		return
	}
	scores := make([]LinkScore, len(req.Pairs))
	// One pool job for the whole request: each pair is a single dot
	// product, far below per-job dispatch cost.
	s.pool.Do(func(sc *Scratch) {
		for i, p := range req.Pairs {
			u, v := snap.Vocab.ID(p[0]), snap.Vocab.ID(p[1])
			if u < 0 || v < 0 {
				missing := p[0]
				if u >= 0 {
					missing = p[1]
				}
				scores[i] = LinkScore{Error: &Error{Code: CodeNotFound, Message: fmt.Sprintf("%q not in vocabulary", missing)}}
				continue
			}
			score := dotRows(snap, u, v)
			scores[i] = LinkScore{U: p[0], V: p[1], Score: &score}
		}
	})
	writeJSON(w, http.StatusOK, LinkScoreResponse{Snapshot: snap.ID, Scores: scores})
}

// dotRows scores a pair by cosine: the dot of unit rows — the same
// scorer eval.LinkAUC ranks with.
func dotRows(snap *Snapshot, u, v int32) float32 {
	return vecmath.Dot(snap.Norm.Row(int(u)), snap.Norm.Row(int(v)))
}

// checkBatch validates a batch length.
func (s *Server) checkBatch(n int) *Error {
	if n == 0 {
		return &Error{Code: CodeBadRequest, Message: "empty batch"}
	}
	if n > s.cfg.MaxBatch {
		return &Error{Code: CodeBatchTooLarge, Message: fmt.Sprintf("batch of %d exceeds limit %d", n, s.cfg.MaxBatch)}
	}
	return nil
}

// statusFor maps an error code to its HTTP status (API.md §2).
func statusFor(code string) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// cacheKey joins key parts with an unambiguous separator. The snapshot
// id leads: entries from a superseded snapshot can never answer a
// query against the new one.
func cacheKey(parts ...string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	b := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			b = append(b, 0)
		}
		b = append(b, p...)
	}
	return string(b)
}

// cacheGet looks up a cached response body.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(key)
}

// respondCached writes resp and stores its body under key.
func (s *Server) respondCached(w http.ResponseWriter, key string, resp interface{}) {
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	body = append(body, '\n')
	if s.cache != nil {
		s.cache.Put(key, body)
	}
	writeBody(w, http.StatusOK, body)
}
