// Textfile: train from an on-disk text corpus using the paper's
// host-parallel ingestion path — the corpus file is partitioned into
// contiguous byte ranges aligned to word boundaries (§4.1) and each
// simulated host streams only its own shard. Pass a corpus path, or let
// the example generate one.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"graphword2vec/internal/core"
	"graphword2vec/internal/corpus"
	"graphword2vec/internal/eval"
	"graphword2vec/internal/synth"
	"graphword2vec/internal/vocab"
)

func main() {
	log.SetFlags(0)
	const hosts = 4

	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = filepath.Join(os.TempDir(), "gw2v-example-corpus.txt")
		cfg, err := synth.Preset("news", synth.ScaleTiny)
		if err != nil {
			log.Fatal(err)
		}
		data, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := data.WriteText(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %s (%d tokens)\n", path, len(data.Tokens))
	}

	// Pass 1 (Algorithm 1 line 3): stream the file to build the
	// vocabulary — the graph's node set.
	builder, err := corpus.CountFile(path)
	if err != nil {
		log.Fatal(err)
	}
	voc, err := builder.Build(vocab.Options{MinCount: 5, Sample: 5e-3})
	if err != nil {
		log.Fatal(err)
	}
	neg, err := vocab.NewUnigramTable(voc)
	if err != nil {
		log.Fatal(err)
	}

	// Pass 2 (Algorithm 1 line 4): every host reads its own contiguous
	// chunk. Boundaries are aligned so no token is split.
	shards, err := corpus.ShardFile(path, hosts)
	if err != nil {
		log.Fatal(err)
	}
	var all []int32
	for _, fs := range shards {
		c, err := corpus.LoadFileShard(path, fs, voc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host %d: bytes [%d,%d) → %d tokens\n", fs.Host, fs.Start, fs.End, c.Len())
		all = append(all, c.Tokens...)
	}

	cfg := core.DefaultConfig(hosts)
	cfg.Epochs = 6
	cfg.Alpha = 0.0125
	tr, err := core.NewTrainer(cfg, voc, neg, corpus.FromIDs(all), 32)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d pairs, %.1f MB communicated across %d sync rounds\n",
		res.Train.Pairs, float64(res.Comm.TotalBytes())/1e6, res.Comm.Rounds/int64(hosts))

	// Show that something was learned: neighbours of the most frequent
	// structured word.
	for id := int32(0); id < int32(voc.Size()); id++ {
		w := voc.Text(id)
		if w[0] == 'w' { // structured words are named w<g>_<attr>
			nn, err := eval.NearestNeighbors(res.Canonical, voc, w, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("neighbours of %s: ", w)
			for _, n := range nn {
				fmt.Printf("%s(%.2f) ", n.Word, n.Similarity)
			}
			fmt.Println()
			break
		}
	}
}
