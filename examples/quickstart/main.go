// Quickstart: generate a small synthetic corpus, train GraphWord2Vec on a
// simulated 4-host cluster, and query nearest neighbours — the 60-second
// tour of the library.
package main

import (
	"fmt"
	"log"

	"graphword2vec/internal/core"
	"graphword2vec/internal/corpus"
	"graphword2vec/internal/eval"
	"graphword2vec/internal/sgns"
	"graphword2vec/internal/synth"
	"graphword2vec/internal/vocab"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic corpus with planted word structure: words named
	//    w<group>_<attr> co-occur by group and attribute.
	cfg, err := synth.Preset("1-billion", synth.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d tokens over %d words\n", len(data.Tokens), cfg.VocabWords())

	// 2. Vocabulary = the node set of the training graph.
	b := vocab.NewBuilder()
	for _, tok := range data.Tokens {
		b.Add(data.Names[tok])
	}
	voc, err := b.Build(vocab.Options{MinCount: 5, Sample: 5e-3})
	if err != nil {
		log.Fatal(err)
	}
	neg, err := vocab.NewUnigramTable(voc)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]int32, 0, len(data.Tokens))
	for _, tok := range data.Tokens {
		if id := voc.ID(data.Names[tok]); id >= 0 {
			ids = append(ids, id)
		}
	}

	// 3. Distributed training: 4 simulated hosts, the paper's model
	//    combiner, sparse (RepModel-Opt) synchronisation.
	tcfg := core.DefaultConfig(4)
	tcfg.Epochs = 6
	tcfg.Alpha = 0.0125
	tcfg.Params = sgns.DefaultParams()
	tr, err := core.NewTrainer(tcfg, voc, neg, corpus.FromIDs(ids), 32)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d pairs on 4 hosts; %.1f MB communicated\n",
		res.Train.Pairs, float64(res.Comm.TotalBytes())/1e6)

	// 4. Semantically similar words ended up nearby.
	query := cfg.WordName(0, 0)
	nn, err := eval.NearestNeighbors(res.Canonical, voc, query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest neighbours of %s:\n", query)
	for _, n := range nn {
		fmt.Printf("  %-12s %.3f\n", n.Word, n.Similarity)
	}
}
