// Graphembed: the Any2Vec demo — DeepWalk-style vertex embeddings
// trained on a synthetic planted-community graph by the exact engine
// that trains word embeddings, first on a simulated 4-host cluster and
// then as four free-running engines over real loopback TCP sockets (the
// execution path cmd/gw2v-worker uses across processes), verifying the
// two produce a bit-identical model. It closes by scoring the embedding
// against the planted structure: community nearest-neighbour purity,
// held-out link-prediction AUC, and a vertex's nearest neighbours.
package main

import (
	"fmt"
	"log"
	"sync"

	"graphword2vec/internal/cliutil"
	"graphword2vec/internal/core"
	"graphword2vec/internal/eval"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/harness"
	"graphword2vec/internal/synth"
)

func main() {
	log.SetFlags(0)
	opts := harness.Defaults(synth.ScaleTiny)
	opts.Hosts = 4
	opts = opts.WithDefaults()

	// 1. A community graph with ground truth: vertices named v<id>_c<community>,
	//    ~12 intra-community neighbours vs ~2 cross-community ones.
	d, err := harness.LoadGraphDataset(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices in %d communities, %d training edges, %d held out\n",
		d.Cfg.NumVertices(), d.Cfg.Communities, d.Walker.Graph().NumEdges(), len(d.TestEdges))

	// 2. Simulated cluster: 4 hosts walk their own start-vertex ranges and
	//    synchronise with the paper's model combiner.
	cfg := harness.GraphTrainConfig(opts, opts.Hosts, gluon.RepModelOpt)
	tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Walker, opts.Dim)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated cluster: %d training pairs on %d hosts, %s communicated\n",
		sim.Train.Pairs, opts.Hosts, cliutil.FormatBytes(sim.Comm.TotalBytes()))

	// 3. The same training as free-running engines over real TCP sockets.
	trs, err := gluon.NewTCPCluster(cfg.Hosts)
	if err != nil {
		log.Fatal(err)
	}
	results := make([]*core.DistributedResult, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	var wg sync.WaitGroup
	for h := 0; h < cfg.Hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			// Closing on exit lets an errored host's peers fail via
			// connection loss instead of blocking forever.
			defer trs[h].Close()
			results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Walker, opts.Dim, nil)
		}(h)
	}
	wg.Wait()
	for h := range errs {
		if errs[h] != nil {
			log.Fatalf("host %d: %v", h, errs[h])
		}
	}
	got := results[0].Canonical
	for i := range sim.Canonical.Emb.Data {
		if sim.Canonical.Emb.Data[i] != got.Emb.Data[i] {
			log.Fatalf("TCP engines diverge from simulation (embedding layer, %d)", i)
		}
	}
	for i := range sim.Canonical.Ctx.Data {
		if sim.Canonical.Ctx.Data[i] != got.Ctx.Data[i] {
			log.Fatalf("TCP engines diverge from simulation (training layer, %d)", i)
		}
	}
	fmt.Printf("%d engines over localhost TCP reproduced the simulation bit-for-bit (%s on the wire from rank 0)\n",
		cfg.Hosts, cliutil.FormatBytes(results[0].Engine.Comm.TotalBytes()))

	// 4. The planted communities are recoverable from the embedding.
	acc, err := d.Evaluate(sim.Canonical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community neighbour purity %.3f (base rate %.3f), link-prediction AUC %.3f\n",
		acc.Purity, 1/float64(d.Cfg.Communities), acc.AUC)

	query := d.Cfg.VertexName(0)
	nn, err := eval.NearestNeighbors(sim.Canonical, d.Vocab, query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest neighbours of %s:\n", query)
	for _, n := range nn {
		fmt.Printf("  %-14s %.3f\n", n.Word, n.Similarity)
	}
}
