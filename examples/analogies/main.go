// Analogies: the paper's §5.1 evaluation protocol end to end — train on a
// simulated cluster, then answer "A : B :: C : ?" questions over 14
// categories and report semantic / syntactic / total accuracy, comparing
// the model combiner against plain averaging.
package main

import (
	"fmt"
	"log"

	"graphword2vec/internal/harness"
	"graphword2vec/internal/synth"
)

func main() {
	log.SetFlags(0)

	opts := harness.Defaults(synth.ScaleTiny)
	opts.Hosts = 8
	opts.Epochs = 8
	opts = opts.WithDefaults()

	d, err := harness.LoadDataset("1-billion", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d words, %d tokens, %d analogy questions\n",
		d.Vocab.Size(), d.Corp.Len(), len(d.Questions))

	for _, combiner := range []string{"MC", "AVG"} {
		res, err := harness.TrainDistributed(d, opts, combiner)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := d.Evaluate(res.Canonical)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s semantic %5.1f%%  syntactic %5.1f%%  total %5.1f%%\n",
			combiner, acc.Semantic, acc.Syntactic, acc.Total)
	}
	fmt.Println("(MC — the paper's model combiner — should clearly beat AVG)")
}
