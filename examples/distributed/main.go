// Distributed: the Figure 6 convergence race in miniature — the same
// corpus trained three ways on a simulated 8-host cluster, printing the
// per-epoch analogy accuracy of each reduction strategy side by side:
//
//	MC   — the paper's model combiner at the sequential learning rate
//	AVG  — bulk-synchronous averaging at the same rate (slow)
//	AVG* — averaging at the 32×-scaled rate (collapses)
//
// It closes by re-running the MC configuration as four free-running
// single-host engines over real TCP sockets (the same execution path
// cmd/gw2v-worker uses across processes) and checking the result is
// byte-identical to the simulation.
package main

import (
	"fmt"
	"log"
	"sync"

	"graphword2vec/internal/cliutil"
	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/harness"
	"graphword2vec/internal/synth"
)

func main() {
	log.SetFlags(0)
	opts := harness.Defaults(synth.ScaleTiny)
	opts.Hosts = 8
	opts.Epochs = 8
	opts = opts.WithDefaults()

	d, err := harness.LoadDataset("1-billion", opts)
	if err != nil {
		log.Fatal(err)
	}

	type series struct {
		label    string
		combiner string
		alpha    float32
		accs     []float64
	}
	runs := []*series{
		{label: "MC", combiner: "MC", alpha: opts.BaseAlpha},
		{label: "AVG", combiner: "AVG", alpha: opts.BaseAlpha},
		{label: "AVG*32", combiner: "AVG", alpha: opts.BaseAlpha * 32},
	}
	for _, s := range runs {
		cfg := core.DefaultConfig(opts.Hosts)
		cfg.Epochs = opts.Epochs
		cfg.Alpha = s.alpha
		cfg.CombinerName = s.combiner
		cfg.Mode = gluon.RepModelOpt
		cfg.Seed = opts.Seed
		cfg.OnEpoch = func(_ int, mv core.ModelView, _ core.EpochResult) {
			acc, err := d.Evaluate(mv.Model)
			if err != nil {
				log.Fatal(err)
			}
			s.accs = append(s.accs, acc.Total)
		}
		tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Corp, opts.Dim)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total analogy accuracy (%%) per epoch, %d hosts:\n", opts.Hosts)
	fmt.Printf("%-6s", "epoch")
	for _, s := range runs {
		fmt.Printf("%9s", s.label)
	}
	fmt.Println()
	for e := 0; e < opts.Epochs; e++ {
		fmt.Printf("%-6d", e+1)
		for _, s := range runs {
			fmt.Printf("%9.1f", s.accs[e])
		}
		fmt.Println()
	}

	tcpParityCheck(d, opts)
}

// tcpParityCheck reruns the MC configuration on a 4-host cluster twice —
// once simulated in lockstep, once as free-running engines over real
// loopback TCP sockets — and verifies the canonical embeddings agree
// bit-for-bit.
func tcpParityCheck(d *harness.Dataset, opts harness.Options) {
	cfg := core.DefaultConfig(4)
	cfg.Epochs = 2
	cfg.Alpha = opts.BaseAlpha
	cfg.Seed = opts.Seed

	tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Corp, opts.Dim)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}

	trs, err := gluon.NewTCPCluster(cfg.Hosts)
	if err != nil {
		log.Fatal(err)
	}
	results := make([]*core.DistributedResult, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	var wg sync.WaitGroup
	for h := 0; h < cfg.Hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			// Closing on exit lets an errored host's peers fail via
			// connection loss instead of blocking forever.
			defer trs[h].Close()
			results[h], errs[h] = core.RunDistributed(cfg, h, trs[h], d.Vocab, d.Neg, d.Corp, opts.Dim, nil)
		}(h)
	}
	wg.Wait()
	for h := range trs {
		if errs[h] != nil {
			log.Fatalf("host %d: %v", h, errs[h])
		}
	}
	got := results[0].Canonical
	for i := range sim.Canonical.Emb.Data {
		if sim.Canonical.Emb.Data[i] != got.Emb.Data[i] {
			log.Fatalf("TCP engines diverge from simulation (embedding layer, %d)", i)
		}
	}
	for i := range sim.Canonical.Ctx.Data {
		if sim.Canonical.Ctx.Data[i] != got.Ctx.Data[i] {
			log.Fatalf("TCP engines diverge from simulation (training layer, %d)", i)
		}
	}
	fmt.Printf("\n%d engines over localhost TCP reproduced the simulated cluster bit-for-bit (%s sent on the wire by rank 0)\n",
		cfg.Hosts, cliutil.FormatBytes(results[0].Engine.Comm.TotalBytes()))
}
