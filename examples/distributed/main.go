// Distributed: the Figure 6 convergence race in miniature — the same
// corpus trained three ways on a simulated 8-host cluster, printing the
// per-epoch analogy accuracy of each reduction strategy side by side:
//
//	MC   — the paper's model combiner at the sequential learning rate
//	AVG  — bulk-synchronous averaging at the same rate (slow)
//	AVG* — averaging at the 32×-scaled rate (collapses)
package main

import (
	"fmt"
	"log"

	"graphword2vec/internal/core"
	"graphword2vec/internal/gluon"
	"graphword2vec/internal/harness"
	"graphword2vec/internal/synth"
)

func main() {
	log.SetFlags(0)
	opts := harness.Defaults(synth.ScaleTiny)
	opts.Hosts = 8
	opts.Epochs = 8
	opts = opts.WithDefaults()

	d, err := harness.LoadDataset("1-billion", opts)
	if err != nil {
		log.Fatal(err)
	}

	type series struct {
		label    string
		combiner string
		alpha    float32
		accs     []float64
	}
	runs := []*series{
		{label: "MC", combiner: "MC", alpha: opts.BaseAlpha},
		{label: "AVG", combiner: "AVG", alpha: opts.BaseAlpha},
		{label: "AVG*32", combiner: "AVG", alpha: opts.BaseAlpha * 32},
	}
	for _, s := range runs {
		cfg := core.DefaultConfig(opts.Hosts)
		cfg.Epochs = opts.Epochs
		cfg.Alpha = s.alpha
		cfg.CombinerName = s.combiner
		cfg.Mode = gluon.RepModelOpt
		cfg.Seed = opts.Seed
		cfg.OnEpoch = func(_ int, mv core.ModelView, _ core.EpochResult) {
			acc, err := d.Evaluate(mv.Model)
			if err != nil {
				log.Fatal(err)
			}
			s.accs = append(s.accs, acc.Total)
		}
		tr, err := core.NewTrainer(cfg, d.Vocab, d.Neg, d.Corp, opts.Dim)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total analogy accuracy (%%) per epoch, %d hosts:\n", opts.Hosts)
	fmt.Printf("%-6s", "epoch")
	for _, s := range runs {
		fmt.Printf("%9s", s.label)
	}
	fmt.Println()
	for e := 0; e < opts.Epochs; e++ {
		fmt.Printf("%-6d", e+1)
		for _, s := range runs {
			fmt.Printf("%9.1f", s.accs[e])
		}
		fmt.Println()
	}
}
